#include "sched/schedule_table.hpp"

#include <gtest/gtest.h>

#include "net/workloads.hpp"
#include <set>

#include "sim/random.hpp"

namespace coeff::sched {
namespace {

flexray::ClusterConfig config_5ms() {
  auto cfg = flexray::ClusterConfig::static_suite(80);
  cfg.bus_bit_rate = 50'000'000;
  return cfg;
}

flexray::ClusterConfig config_1ms() {
  auto cfg = flexray::ClusterConfig::app_suite();
  cfg.bus_bit_rate = 50'000'000;
  return cfg;
}

net::Message msg(int id, int node, int period_ms, int deadline_ms, int bits,
                 int offset_us = 0) {
  net::Message m;
  m.id = id;
  m.node = node;
  m.kind = net::MessageKind::kStatic;
  m.period = sim::millis(period_ms);
  m.deadline = sim::millis(deadline_ms);
  m.size_bits = bits;
  m.offset = sim::micros(offset_us);
  return m;
}

TEST(ScheduleTableTest, SingleMessagePlacedInFirstSlot) {
  const auto table = StaticScheduleTable::build(
      net::MessageSet({msg(1, 0, 5, 5, 400)}), config_5ms());
  ASSERT_EQ(table.assignments().size(), 1u);
  const auto& a = table.assignments()[0];
  EXPECT_EQ(a.slot, units::SlotId{1});
  EXPECT_EQ(a.repetition, 1);
  EXPECT_EQ(table.message_at(units::SlotId{1}, units::CycleIndex{0}), 1);
  EXPECT_EQ(table.message_at(units::SlotId{1}, units::CycleIndex{17}), 1);
  EXPECT_TRUE(table.is_idle(units::SlotId{2}, units::CycleIndex{0}));
}

TEST(ScheduleTableTest, PeriodMustBeCycleMultiple) {
  EXPECT_THROW((void)StaticScheduleTable::build(
                   net::MessageSet({msg(1, 0, 7, 5, 400)}), config_5ms()),
               std::invalid_argument);
}

TEST(ScheduleTableTest, PayloadMustFitSlot) {
  // 50 Mb/s x 40 us = 2000 bits.
  EXPECT_THROW((void)StaticScheduleTable::build(
                   net::MessageSet({msg(1, 0, 5, 5, 2001)}), config_5ms()),
               std::invalid_argument);
  EXPECT_NO_THROW((void)StaticScheduleTable::build(
      net::MessageSet({msg(1, 0, 5, 5, 2000)}), config_5ms()));
}

TEST(ScheduleTableTest, LatencyGreedySpreadsWhenSlotsAreFree) {
  // With 80 free slots the builder prefers the lower-latency placement
  // (distinct early slots) over packing one slot via multiplexing.
  const auto table = StaticScheduleTable::build(
      net::MessageSet({msg(1, 0, 10, 10, 400), msg(2, 1, 10, 10, 400)}),
      config_5ms());
  ASSERT_EQ(table.assignments().size(), 2u);
  EXPECT_EQ(table.slots_used(), 2);
  EXPECT_LT(table.assignments()[1].latency, sim::millis(1));
}

TEST(ScheduleTableTest, CycleMultiplexingSharesScarceSlots) {
  // One slot, four messages of repetition 4: all four must multiplex
  // into disjoint phases of the single slot.
  flexray::ClusterConfig cfg;
  cfg.g_macro_per_cycle = units::Macroticks{1000};
  cfg.g_number_of_static_slots = 1;
  cfg.gd_static_slot = units::Macroticks{40};
  cfg.g_number_of_minislots = 10;
  cfg.bus_bit_rate = 50'000'000;
  net::MessageSet set;
  for (int i = 1; i <= 4; ++i) set.add(msg(i, 0, 4, 4, 400));
  const auto table = StaticScheduleTable::build(set, cfg);
  ASSERT_EQ(table.assignments().size(), 4u);
  EXPECT_TRUE(table.unplaced().empty());
  EXPECT_EQ(table.slots_used(), 1);
  std::set<std::int64_t> phases;
  for (const auto& a : table.assignments()) {
    EXPECT_EQ(a.slot, units::SlotId{1});
    EXPECT_EQ(a.repetition, 4);
    phases.insert(a.base_cycle.value() % 4);
  }
  EXPECT_EQ(phases.size(), 4u);
}

TEST(ScheduleTableTest, NoSlotCycleCollisions_Property) {
  sim::Rng rng(5);
  net::SyntheticStaticOptions opt;
  opt.count = 150;
  opt.max_bits = 1600;
  const auto set = net::synthetic_static(opt, rng);
  const auto table = StaticScheduleTable::build(set, config_5ms());
  EXPECT_TRUE(table.unplaced().empty());
  // Exhaustively check one table period: at most one message per
  // (slot, cycle).  message_at returning the first matching occupant
  // must be the *only* matching occupant.
  const std::int64_t period = table.table_period_cycles();
  for (std::int64_t slot = 1; slot <= 80; ++slot) {
    for (std::int64_t cycle = 0; cycle < std::min<std::int64_t>(period, 64);
         ++cycle) {
      int owners = 0;
      for (const auto& a : table.assignments()) {
        if (a.slot == units::SlotId{slot} && cycle >= a.base_cycle.value() &&
            (cycle - a.base_cycle.value()) % a.repetition == 0) {
          ++owners;
        }
      }
      EXPECT_LE(owners, 1) << "slot " << slot << " cycle " << cycle;
    }
  }
}

TEST(ScheduleTableTest, EveryPlacedMessageTransmitsOncePerPeriod) {
  sim::Rng rng(6);
  net::SyntheticStaticOptions opt;
  opt.count = 40;
  const auto set = net::synthetic_static(opt, rng);
  const auto table = StaticScheduleTable::build(set, config_5ms());
  for (const auto& a : table.assignments()) {
    const net::Message* m = set.find(a.message_id);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(a.repetition, m->period / sim::millis(5));
    // The slot is owned at exactly the assigned phase.
    EXPECT_EQ(table.message_at(a.slot, a.base_cycle), a.message_id);
    EXPECT_EQ(table.message_at(a.slot, a.base_cycle + a.repetition),
              a.message_id);
  }
}

TEST(ScheduleTableTest, LatencyIsReleaseToSlotEnd) {
  // Offset 100 us, slot 1 ends at 40 us into each cycle -> the first
  // cycle whose slot starts at/after release is cycle 1: latency
  // 5000 + 40 - 100 = 4940 us. A later slot may beat it: slot k starts
  // at (k-1)*40 us; the first slot past 100 us is slot 4 (120 us), with
  // latency 120 + 40 - 100 = 60 us.
  const auto table = StaticScheduleTable::build(
      net::MessageSet({msg(1, 0, 5, 5, 400, 100)}), config_5ms());
  ASSERT_EQ(table.assignments().size(), 1u);
  EXPECT_EQ(table.assignments()[0].slot, units::SlotId{4});
  EXPECT_EQ(table.assignments()[0].latency, sim::micros(60));
}

TEST(ScheduleTableTest, DeadlineRiskWhenTdmaCannotMeetDeadline) {
  // Deadline 1 ms with a 5 ms cycle and release near the end of the
  // static segment: no placement can meet it.
  const auto table = StaticScheduleTable::build(
      net::MessageSet({msg(1, 0, 5, 1, 400, 4000)}), config_5ms());
  EXPECT_EQ(table.deadline_risk().size(), 1u);
  EXPECT_TRUE(table.unplaced().empty());
  ASSERT_EQ(table.assignments().size(), 1u);
  EXPECT_GT(table.assignments()[0].latency, sim::millis(1));
}

TEST(ScheduleTableTest, BbwFitsAppSuite) {
  const auto table =
      StaticScheduleTable::build(net::brake_by_wire(), config_1ms());
  EXPECT_TRUE(table.unplaced().empty());
  EXPECT_EQ(table.assignments().size(), 20u);
  EXPECT_LE(table.slots_used(), 15);
}

TEST(ScheduleTableTest, AccFitsAppSuite) {
  const auto table =
      StaticScheduleTable::build(net::adaptive_cruise(), config_1ms());
  EXPECT_TRUE(table.unplaced().empty());
  EXPECT_EQ(table.assignments().size(), 20u);
  // ACC's long periods (16/24/32 cycles) leave every placement with
  // latency far below the deadline.
  EXPECT_TRUE(table.deadline_risk().empty());
}

TEST(ScheduleTableTest, OverloadReportsUnplaced) {
  // 4 messages with repetition 1 into a 2-slot segment.
  flexray::ClusterConfig cfg;
  cfg.g_macro_per_cycle = units::Macroticks{1000};
  cfg.g_number_of_static_slots = 2;
  cfg.gd_static_slot = units::Macroticks{40};
  cfg.g_number_of_minislots = 10;
  cfg.bus_bit_rate = 50'000'000;
  net::MessageSet set;
  for (int i = 1; i <= 4; ++i) set.add(msg(i, 0, 1, 1, 400));
  const auto table = StaticScheduleTable::build(set, cfg);
  EXPECT_EQ(table.assignments().size(), 2u);
  EXPECT_EQ(table.unplaced().size(), 2u);
}

TEST(ScheduleTableTest, RankOptionControlsPlacementOrder) {
  // With default order both messages compete by deadline; ranking the
  // second one first hands it the better slot.
  net::MessageSet set({msg(1, 0, 5, 5, 400), msg(2, 1, 5, 5, 400)});
  TableBuildOptions options;
  options.rank = [](const net::Message& m) { return m.id == 2 ? 0 : 1; };
  const auto table = StaticScheduleTable::build(set, config_5ms(), options);
  EXPECT_EQ(table.assignment_of(2)->slot, units::SlotId{1});
  EXPECT_EQ(table.assignment_of(1)->slot, units::SlotId{2});
}

TEST(ScheduleTableTest, OccupancyFractionSane) {
  const auto table = StaticScheduleTable::build(
      net::MessageSet({msg(1, 0, 5, 5, 400)}), config_5ms());
  // One slot of 80 occupied in every cycle.
  EXPECT_NEAR(table.occupancy(), 1.0 / 80.0, 1e-9);
}

TEST(ScheduleTableTest, AssignmentLookupByMessage) {
  const auto table = StaticScheduleTable::build(
      net::MessageSet({msg(7, 0, 5, 5, 400)}), config_5ms());
  ASSERT_NE(table.assignment_of(7), nullptr);
  EXPECT_EQ(table.assignment_of(7)->message_id, 7);
  EXPECT_EQ(table.assignment_of(8), nullptr);
}

TEST(ScheduleTableTest, DynamicMessagesIgnored) {
  net::Message dyn = msg(1, 0, 5, 5, 400);
  dyn.kind = net::MessageKind::kDynamic;
  dyn.frame_id = 90;
  const auto table =
      StaticScheduleTable::build(net::MessageSet({dyn}), config_5ms());
  EXPECT_TRUE(table.assignments().empty());
}

}  // namespace
}  // namespace coeff::sched
