#include "sched/criticality.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/message.hpp"
#include "sim/time.hpp"

namespace coeff::sched {
namespace {

using net::Criticality;

ModePolicy quick_policy() {
  ModePolicy p;
  p.enabled = true;
  p.enter_l1_factor = 5.0;
  p.enter_l2_factor = 25.0;
  p.exit_factor = 2.0;
  p.min_dwell_cycles = 3;
  p.recovery_cycles = 2;
  return p;
}

TEST(ModeManagerTest, EscalatesOneLevelPerCycle) {
  ModeManager mgr(quick_policy());
  // Severe drift wants L2 immediately, but each evaluate() steps one
  // level so every transition is traceable.
  auto d1 = mgr.evaluate(100.0, false);
  EXPECT_TRUE(d1.changed);
  EXPECT_EQ(d1.from, CriticalityMode::kNormal);
  EXPECT_EQ(d1.to, CriticalityMode::kDegradedL1);
  auto d2 = mgr.evaluate(100.0, false);
  EXPECT_TRUE(d2.changed);
  EXPECT_EQ(d2.to, CriticalityMode::kDegradedL2);
  auto d3 = mgr.evaluate(100.0, false);
  EXPECT_FALSE(d3.changed);
  EXPECT_EQ(mgr.mode(), CriticalityMode::kDegradedL2);
  EXPECT_EQ(mgr.mode_changes(), 2);
}

TEST(ModeManagerTest, OverloadAloneOnlyJustifiesL1) {
  ModeManager mgr(quick_policy());
  for (int c = 0; c < 10; ++c) (void)mgr.evaluate(1.0, true);
  EXPECT_EQ(mgr.mode(), CriticalityMode::kDegradedL1);
}

TEST(ModeManagerTest, DeEscalationNeedsDwellAndCalmStreak) {
  ModeManager mgr(quick_policy());
  (void)mgr.evaluate(10.0, false);
  ASSERT_EQ(mgr.mode(), CriticalityMode::kDegradedL1);
  // Calm immediately: recovery_cycles=2 of calm are reached before
  // min_dwell_cycles=3, so dwell is the binding constraint.
  (void)mgr.evaluate(1.0, false);  // dwell=1 after entry cycle... calm=1
  (void)mgr.evaluate(1.0, false);  // calm=2 >= recovery, dwell=2 < 3
  EXPECT_EQ(mgr.mode(), CriticalityMode::kDegradedL1);
  auto d = mgr.evaluate(1.0, false);  // dwell=3 >= 3: steps down
  EXPECT_TRUE(d.changed);
  EXPECT_EQ(d.to, CriticalityMode::kNormal);
}

TEST(ModeManagerTest, CalmStreakResetsOnNoisyCycle) {
  auto policy = quick_policy();
  policy.min_dwell_cycles = 0;
  ModeManager mgr(policy);
  (void)mgr.evaluate(10.0, false);
  ASSERT_TRUE(mgr.degraded());
  // Calm, noisy, calm: the noisy cycle (ratio in the hysteresis band,
  // above exit_factor) must reset the streak and hold the mode.
  (void)mgr.evaluate(1.0, false);
  (void)mgr.evaluate(3.0, false);
  (void)mgr.evaluate(1.0, false);
  EXPECT_TRUE(mgr.degraded());
  (void)mgr.evaluate(1.0, false);  // second consecutive calm cycle
  EXPECT_FALSE(mgr.degraded());
}

TEST(ModeManagerTest, StepDownConsumesTheCalmStreak) {
  // L2 -> L1 -> NORMAL must take one full calm window per step, not
  // ride a single streak straight down.
  auto policy = quick_policy();
  policy.min_dwell_cycles = 0;
  ModeManager mgr(policy);
  (void)mgr.evaluate(100.0, false);
  (void)mgr.evaluate(100.0, false);
  ASSERT_EQ(mgr.mode(), CriticalityMode::kDegradedL2);
  (void)mgr.evaluate(1.0, false);
  auto d = mgr.evaluate(1.0, false);  // calm streak hits 2: L2 -> L1
  EXPECT_TRUE(d.changed);
  EXPECT_EQ(d.to, CriticalityMode::kDegradedL1);
  auto hold = mgr.evaluate(1.0, false);  // streak restarted: holds L1
  EXPECT_FALSE(hold.changed);
  auto down = mgr.evaluate(1.0, false);
  EXPECT_TRUE(down.changed);
  EXPECT_EQ(down.to, CriticalityMode::kNormal);
}

TEST(ModeManagerTest, MatchupOpensAfterRecoveryWindowInNormal) {
  ModeManager mgr(quick_policy());
  (void)mgr.evaluate(1.0, false);
  EXPECT_FALSE(mgr.matchup_open());  // 1 NORMAL cycle < recovery 2
  (void)mgr.evaluate(1.0, false);
  EXPECT_TRUE(mgr.matchup_open());
  (void)mgr.evaluate(10.0, false);  // re-degrade closes it immediately
  EXPECT_FALSE(mgr.matchup_open());
}

TEST(ModeManagerTest, CountsDwellPerMode) {
  auto policy = quick_policy();
  policy.min_dwell_cycles = 0;
  ModeManager mgr(policy);
  (void)mgr.evaluate(1.0, false);
  (void)mgr.evaluate(10.0, false);  // -> L1 (counted as an L1 cycle)
  (void)mgr.evaluate(10.0, false);
  EXPECT_EQ(mgr.cycles_in(CriticalityMode::kNormal), 1);
  EXPECT_EQ(mgr.cycles_in(CriticalityMode::kDegradedL1), 2);
  EXPECT_EQ(mgr.cycles_in(CriticalityMode::kDegradedL2), 0);
}

TEST(ModePolicyTest, ValidateRejectsInconsistentThresholds) {
  ModePolicy p;
  p.enter_l2_factor = p.enter_l1_factor - 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ModePolicy{};
  p.exit_factor = p.enter_l1_factor + 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ModePolicy{};
  p.recovery_cycles = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ModePolicy{};
  p.matchup_burst = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  EXPECT_NO_THROW(ModePolicy{}.validate());
}

TEST(ModePolicyParseTest, PresetsAndOverridesCompose) {
  const auto off = parse_mode_policy("off");
  ASSERT_TRUE(off.has_value());
  EXPECT_FALSE(off->enabled);

  const auto cons = parse_mode_policy("conservative");
  ASSERT_TRUE(cons.has_value());
  EXPECT_TRUE(cons->enabled);
  EXPECT_DOUBLE_EQ(cons->enter_l1_factor, ModePolicy{}.enter_l1_factor);

  const auto tuned = parse_mode_policy("aggressive,dwell=7,burst=2");
  ASSERT_TRUE(tuned.has_value());
  EXPECT_DOUBLE_EQ(tuned->enter_l1_factor, 3.0);  // from the preset
  EXPECT_EQ(tuned->min_dwell_cycles, 7);          // overridden
  EXPECT_EQ(tuned->matchup_burst, 2);

  const auto keyed = parse_mode_policy(
      "enter-l1=4,enter-l2=12,exit=1.5,recovery=6,window=128,backlog=16");
  ASSERT_TRUE(keyed.has_value());
  EXPECT_DOUBLE_EQ(keyed->enter_l2_factor, 12.0);
  EXPECT_EQ(keyed->overload_backlog, 16);
}

TEST(ModePolicyParseTest, RejectsGarbageTotally) {
  EXPECT_FALSE(parse_mode_policy("").has_value());
  EXPECT_FALSE(parse_mode_policy("bogus").has_value());
  EXPECT_FALSE(parse_mode_policy("dwell=ten").has_value());
  EXPECT_FALSE(parse_mode_policy("aggressive,nosuchkey=1").has_value());
  EXPECT_FALSE(parse_mode_policy("dwell=5,aggressive").has_value());
  EXPECT_FALSE(parse_mode_policy("enter-l1=1.0").has_value());  // validate()
  EXPECT_FALSE(parse_mode_policy("exit=9").has_value());  // > enter_l1
  EXPECT_FALSE(parse_mode_policy(",,").has_value());
}

TEST(CriticalitySpecTest, ParseAndApply) {
  const auto spec = parse_criticality_spec("static=high,dyn=low,7=medium");
  ASSERT_TRUE(spec.has_value());
  ASSERT_TRUE(spec->static_default.has_value());
  EXPECT_EQ(*spec->static_default, Criticality::kHigh);
  ASSERT_EQ(spec->overrides.size(), 1u);
  EXPECT_EQ(spec->overrides[0].first, 7);

  net::Message s;
  s.id = 1;
  s.name = "s";
  s.kind = net::MessageKind::kStatic;
  s.period = sim::millis(10);
  s.deadline = s.period;
  s.size_bits = 64;
  net::Message d = s;
  d.id = 7;
  d.name = "d";
  d.kind = net::MessageKind::kDynamic;
  net::MessageSet set({s, d});
  const auto out = with_criticality(set, *spec);
  EXPECT_EQ(out.messages()[0].criticality, Criticality::kHigh);
  EXPECT_EQ(out.messages()[1].criticality, Criticality::kMedium);  // override
}

TEST(CriticalitySpecTest, RejectsMalformedEntries) {
  EXPECT_FALSE(parse_criticality_spec("static=extreme").has_value());
  EXPECT_FALSE(parse_criticality_spec("=high").has_value());
  EXPECT_FALSE(parse_criticality_spec("seven=high").has_value());
  EXPECT_FALSE(parse_criticality_spec("-3=high").has_value());
  EXPECT_FALSE(parse_criticality_spec("static").has_value());
  // The empty spec is valid and assigns nothing.
  const auto empty = parse_criticality_spec("");
  ASSERT_TRUE(empty.has_value());
  EXPECT_FALSE(empty->static_default.has_value());
  EXPECT_TRUE(empty->overrides.empty());
}

TEST(CriticalitySpecTest, EffectiveCriticalityDefaultsByKind) {
  net::Message s;
  s.kind = net::MessageKind::kStatic;
  net::Message d;
  d.kind = net::MessageKind::kDynamic;
  // Legacy sets (nothing assigned): statics high, dynamics low — the
  // binary degraded semantics.
  EXPECT_EQ(effective_criticality(s, false), Criticality::kHigh);
  EXPECT_EQ(effective_criticality(d, false), Criticality::kLow);
  // Once any level is assigned, the stored level wins verbatim.
  d.criticality = Criticality::kMedium;
  EXPECT_EQ(effective_criticality(d, true), Criticality::kMedium);
  EXPECT_EQ(effective_criticality(s, true), Criticality::kLow);
}

TEST(CriticalitySpecTest, AdmissionFloorOrdersModes) {
  EXPECT_EQ(admission_floor(CriticalityMode::kNormal), Criticality::kLow);
  EXPECT_EQ(admission_floor(CriticalityMode::kDegradedL1),
            Criticality::kMedium);
  EXPECT_EQ(admission_floor(CriticalityMode::kDegradedL2),
            Criticality::kHigh);
}

}  // namespace
}  // namespace coeff::sched
