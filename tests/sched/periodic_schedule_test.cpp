#include "sched/periodic_schedule.hpp"

#include <gtest/gtest.h>

namespace coeff::sched {
namespace {

PeriodicTask task(int id, int wcet_ms, int period_ms, int deadline_ms = 0,
                  int offset_ms = 0) {
  PeriodicTask t;
  t.id = id;
  t.wcet = sim::millis(wcet_ms);
  t.period = sim::millis(period_ms);
  t.deadline = deadline_ms > 0 ? sim::millis(deadline_ms)
                               : sim::millis(period_ms);
  t.offset = sim::millis(offset_ms);
  return t;
}

TEST(PeriodicScheduleTest, SingleTaskRunsImmediately) {
  TaskSet set({task(1, 2, 10)});
  const auto result = simulate_periodic(set, sim::millis(20));
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.jobs[0].release, sim::Time::zero());
  EXPECT_EQ(result.jobs[0].finish, sim::millis(2));
  EXPECT_EQ(result.jobs[1].release, sim::millis(10));
  EXPECT_EQ(result.jobs[1].finish, sim::millis(12));
  EXPECT_FALSE(result.any_deadline_missed);
}

TEST(PeriodicScheduleTest, TimelineCoversHorizonContiguously) {
  TaskSet set({task(1, 2, 10), task(2, 3, 20)});
  const auto result = simulate_periodic(set, sim::millis(40));
  ASSERT_FALSE(result.timeline.empty());
  EXPECT_EQ(result.timeline.front().start, sim::Time::zero());
  EXPECT_EQ(result.timeline.back().end, sim::millis(40));
  for (std::size_t i = 1; i < result.timeline.size(); ++i) {
    EXPECT_EQ(result.timeline[i].start, result.timeline[i - 1].end);
  }
}

TEST(PeriodicScheduleTest, PreemptionByHigherPriority) {
  // Low-priority (period 20) starts at 0; high-priority releases at 1
  // and preempts.
  TaskSet set({task(1, 2, 5, 5, 1), task(2, 4, 20)});
  const auto result = simulate_periodic(set, sim::millis(10));
  // Task 2 (level 1) runs [0,1), preempted [1,3), resumes [3,6).
  EXPECT_EQ(result.finish_of(1, 0), sim::millis(6));
  // Task 1 job 0 runs [1,3).
  EXPECT_EQ(result.finish_of(0, 0), sim::millis(3));
}

TEST(PeriodicScheduleTest, ExecutionConservation) {
  // Total busy time per level equals jobs finished x wcet.
  TaskSet set({task(1, 1, 4), task(2, 2, 8), task(3, 3, 16)});
  const auto result = simulate_periodic(set, sim::millis(32));
  std::vector<sim::Time> busy(3, sim::Time::zero());
  for (const auto& seg : result.timeline) {
    if (seg.level >= 0 && seg.level < 3) {
      busy[static_cast<std::size_t>(seg.level)] += seg.end - seg.start;
    }
  }
  EXPECT_EQ(busy[0], sim::millis(8 * 1));   // 8 jobs of 1 ms
  EXPECT_EQ(busy[1], sim::millis(4 * 2));   // 4 jobs of 2 ms
  EXPECT_EQ(busy[2], sim::millis(2 * 3));   // 2 jobs of 3 ms
}

TEST(PeriodicScheduleTest, DeadlineMissDetected) {
  TaskSet set({task(1, 3, 4), task(2, 3, 8, 8)});
  const auto result = simulate_periodic(set, sim::millis(16));
  EXPECT_TRUE(result.any_deadline_missed);
}

TEST(PeriodicScheduleTest, OffsetsDelayFirstRelease) {
  TaskSet set({task(1, 1, 10, 10, 4)});
  const auto result = simulate_periodic(set, sim::millis(20));
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.jobs[0].release, sim::millis(4));
  EXPECT_EQ(result.jobs[0].finish, sim::millis(5));
  EXPECT_EQ(result.jobs[1].release, sim::millis(14));
}

TEST(PeriodicScheduleTest, LevelIdleAccounting) {
  TaskSet set({task(1, 2, 10)});
  const auto result = simulate_periodic(set, sim::millis(10));
  // Level 0 idle = 8 ms of the 10 ms horizon.
  EXPECT_EQ(result.level_idle(0, sim::Time::zero(), sim::millis(10)),
            sim::millis(8));
  // Restricted window.
  EXPECT_EQ(result.level_idle(0, sim::millis(1), sim::millis(3)),
            sim::millis(1));
}

TEST(PeriodicScheduleTest, InsertedBlockRunsAboveEverything) {
  TaskSet set({task(1, 2, 10)});
  const std::vector<InsertedBlock> blocks{{sim::Time::zero(), sim::millis(1)}};
  const auto result = simulate_periodic(set, sim::millis(10), blocks);
  // The periodic job is displaced by 1 ms.
  EXPECT_EQ(result.finish_of(0, 0), sim::millis(3));
  ASSERT_FALSE(result.timeline.empty());
  EXPECT_EQ(result.timeline.front().level, kInsertedLevel);
}

TEST(PeriodicScheduleTest, InsertedBlockInIdleTimeHarmless) {
  TaskSet set({task(1, 2, 10)});
  const std::vector<InsertedBlock> blocks{{sim::millis(5), sim::millis(2)}};
  const auto result = simulate_periodic(set, sim::millis(20), blocks);
  EXPECT_EQ(result.finish_of(0, 0), sim::millis(2));   // untouched
  EXPECT_EQ(result.finish_of(0, 1), sim::millis(12));  // untouched
  EXPECT_FALSE(result.any_deadline_missed);
}

TEST(PeriodicScheduleTest, UnsortedInsertedBlocksRejected) {
  TaskSet set({task(1, 2, 10)});
  const std::vector<InsertedBlock> blocks{{sim::millis(5), sim::millis(1)},
                                          {sim::millis(2), sim::millis(1)}};
  EXPECT_THROW((void)simulate_periodic(set, sim::millis(10), blocks),
               std::invalid_argument);
}

TEST(PeriodicScheduleTest, EqualPriorityIsFifoWithinLevel) {
  // Same deadline -> one level each, ordered by id; but FIFO applies to
  // jobs of the same task across releases.
  TaskSet set({task(1, 6, 10, 10)});
  const auto result = simulate_periodic(set, sim::millis(30));
  EXPECT_EQ(result.finish_of(0, 0), sim::millis(6));
  EXPECT_EQ(result.finish_of(0, 1), sim::millis(16));
  EXPECT_EQ(result.finish_of(0, 2), sim::millis(26));
}

TEST(PeriodicScheduleTest, UnfinishedJobsReportMax) {
  TaskSet set({task(1, 5, 10)});
  const auto result = simulate_periodic(set, sim::millis(12));
  // Second job released at 10 ms cannot finish by 12 ms.
  EXPECT_EQ(result.finish_of(0, 1), sim::Time::max());
}

TEST(PeriodicScheduleTest, BusyHorizonFullyPacked) {
  // Utilization exactly 1 with harmonic periods: no idle at the lowest
  // level.
  TaskSet set({task(1, 1, 2), task(2, 2, 4)});
  const auto result = simulate_periodic(set, sim::millis(40));
  EXPECT_EQ(result.level_idle(1, sim::Time::zero(), sim::millis(40)),
            sim::Time::zero());
  EXPECT_FALSE(result.any_deadline_missed);
}

}  // namespace
}  // namespace coeff::sched
