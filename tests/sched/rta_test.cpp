#include "sched/rta.hpp"

#include <gtest/gtest.h>

namespace coeff::sched {
namespace {

PeriodicTask task(int id, int wcet_ms, int period_ms, int deadline_ms = 0) {
  PeriodicTask t;
  t.id = id;
  t.wcet = sim::millis(wcet_ms);
  t.period = sim::millis(period_ms);
  t.deadline = deadline_ms > 0 ? sim::millis(deadline_ms)
                               : sim::millis(period_ms);
  return t;
}

TEST(RtaTest, TextbookExample) {
  // Classic: C=(1,2,3), T=(4,8,16). R1=1, R2=3, R3=3+2*1+1*2... iterate:
  // R3: 3 -> 3+1+2=6 -> 3+2+2=7... converge at 10? Compute via the
  // implementation and check against hand iteration:
  // R3: w=3; w=3+ceil(3/4)*1+ceil(3/8)*2=3+1+2=6; w=3+2+2=7; w=3+2+2=7. ✓
  TaskSet set({task(1, 1, 4), task(2, 2, 8), task(3, 3, 16)});
  const auto result = response_time_analysis(set);
  EXPECT_TRUE(result.schedulable);
  ASSERT_EQ(result.response_times.size(), 3u);
  EXPECT_EQ(result.response_times[0], sim::millis(1));
  EXPECT_EQ(result.response_times[1], sim::millis(3));
  EXPECT_EQ(result.response_times[2], sim::millis(7));
}

TEST(RtaTest, HighestPriorityResponseIsItsWcet) {
  TaskSet set({task(1, 2, 10)});
  const auto r = response_time_of_level(set, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, sim::millis(2));
}

TEST(RtaTest, UnschedulableSetDetected) {
  // Utilization 1.5 cannot fit.
  TaskSet set({task(1, 3, 4), task(2, 3, 4, 4)});
  const auto result = response_time_analysis(set);
  EXPECT_FALSE(result.schedulable);
  EXPECT_EQ(result.response_times[1], sim::Time::max());
}

TEST(RtaTest, DeadlineTighterThanResponseFails) {
  // U = 0.886 < 1 but the lowest level diverges past its deadline:
  // R3 = 2 -> 6 -> 8 -> 10 > 8.
  TaskSet set({task(1, 2, 5), task(2, 2, 7, 7), task(3, 2, 10, 8)});
  const auto result = response_time_analysis(set);
  EXPECT_LT(set.utilization(), 1.0);
  EXPECT_FALSE(result.schedulable);
  EXPECT_EQ(result.response_times[2], sim::Time::max());
}

TEST(RtaTest, ExactBoundaryIsSchedulable) {
  TaskSet set({task(1, 2, 10), task(2, 2, 20, 4)});
  const auto result = response_time_analysis(set);
  EXPECT_TRUE(result.schedulable);
  EXPECT_EQ(result.response_times[1], sim::millis(4));
}

TEST(RtaTest, FullUtilizationHarmonicSetSchedulable) {
  // Harmonic periods schedule up to U = 1.
  TaskSet set({task(1, 1, 2), task(2, 2, 4)});
  EXPECT_NEAR(set.utilization(), 1.0, 1e-12);
  const auto result = response_time_analysis(set);
  EXPECT_TRUE(result.schedulable);
  EXPECT_EQ(result.response_times[1], sim::millis(4));
}

TEST(RtaTest, LiuLaylandBound) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(liu_layland_bound(3), 0.7798, 1e-4);
  // Approaches ln 2 from above.
  EXPECT_GT(liu_layland_bound(1000), 0.6931);
  EXPECT_LT(liu_layland_bound(1000), 0.694);
}

TEST(RtaTest, BelowLiuLaylandAlwaysPasses) {
  // Any 3-task set below 0.7798 utilization must pass the exact test.
  TaskSet set({task(1, 1, 5), task(2, 2, 10), task(3, 3, 20)});
  EXPECT_LT(set.utilization(), liu_layland_bound(3));
  EXPECT_TRUE(response_time_analysis(set).schedulable);
}

TEST(RtaTest, ResponseTimesMonotoneInPriority) {
  TaskSet set({task(1, 1, 4), task(2, 1, 8), task(3, 1, 16), task(4, 1, 32)});
  const auto result = response_time_analysis(set);
  ASSERT_TRUE(result.schedulable);
  for (std::size_t i = 1; i < result.response_times.size(); ++i) {
    EXPECT_GE(result.response_times[i], result.response_times[i - 1]);
  }
}

}  // namespace
}  // namespace coeff::sched
