#include "sched/task.hpp"

#include <gtest/gtest.h>

namespace coeff::sched {
namespace {

PeriodicTask task(int id, int wcet_us, int period_ms, int deadline_ms = 0,
                  int offset_us = 0) {
  PeriodicTask t;
  t.id = id;
  t.wcet = sim::micros(wcet_us);
  t.period = sim::millis(period_ms);
  t.deadline = deadline_ms > 0 ? sim::millis(deadline_ms)
                               : sim::millis(period_ms);
  t.offset = sim::micros(offset_us);
  return t;
}

TEST(TaskSetTest, DeadlineMonotonicOrdering) {
  TaskSet set({task(1, 10, 50), task(2, 10, 5), task(3, 10, 20)});
  EXPECT_EQ(set.at_level(0).id, 2);
  EXPECT_EQ(set.at_level(1).id, 3);
  EXPECT_EQ(set.at_level(2).id, 1);
}

TEST(TaskSetTest, TieBreakById) {
  TaskSet set({task(9, 10, 5), task(3, 10, 5)});
  EXPECT_EQ(set.at_level(0).id, 3);
  EXPECT_EQ(set.at_level(1).id, 9);
}

TEST(TaskSetTest, AddKeepsOrder) {
  TaskSet set({task(1, 10, 50)});
  set.add(task(2, 10, 5));
  EXPECT_EQ(set.at_level(0).id, 2);
}

TEST(TaskSetTest, Utilization) {
  // 1ms/10ms + 2ms/20ms = 0.2
  TaskSet set({task(1, 1000, 10), task(2, 2000, 20)});
  EXPECT_NEAR(set.utilization(), 0.2, 1e-12);
}

TEST(TaskSetTest, Hyperperiod) {
  TaskSet set({task(1, 10, 8), task(2, 10, 12)});
  EXPECT_EQ(set.hyperperiod(), sim::millis(24));
}

TEST(TaskSetTest, ValidationCatchesBadTasks) {
  {
    TaskSet set({task(1, 10, 5), task(1, 10, 8)});
    EXPECT_THROW(set.validate(), std::invalid_argument);  // duplicate id
  }
  {
    auto t = task(1, 10, 5);
    t.wcet = sim::Time::zero();
    EXPECT_THROW(TaskSet({t}).validate(), std::invalid_argument);
  }
  {
    auto t = task(1, 10, 5);
    t.wcet = sim::millis(6);  // wcet > period
    EXPECT_THROW(TaskSet({t}).validate(), std::invalid_argument);
  }
  {
    auto t = task(1, 10, 5, 6);  // deadline > period
    EXPECT_THROW(TaskSet({t}).validate(), std::invalid_argument);
  }
  {
    auto t = task(1, 10, 5);
    t.offset = sim::millis(6);  // offset > period
    EXPECT_THROW(TaskSet({t}).validate(), std::invalid_argument);
  }
}

TEST(TaskSetTest, ValidSetPasses) {
  TaskSet set({task(1, 100, 5, 3, 500), task(2, 200, 10)});
  EXPECT_NO_THROW(set.validate());
}

}  // namespace
}  // namespace coeff::sched
