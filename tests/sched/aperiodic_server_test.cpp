#include "sched/aperiodic_server.hpp"

#include <gtest/gtest.h>

namespace coeff::sched {
namespace {

PeriodicTask task(int id, int wcet_ms, int period_ms) {
  PeriodicTask t;
  t.id = id;
  t.wcet = sim::millis(wcet_ms);
  t.period = sim::millis(period_ms);
  t.deadline = t.period;
  return t;
}

AperiodicJob job(std::uint64_t id, int arrival_ms, int work_ms) {
  AperiodicJob j;
  j.id = id;
  j.arrival = sim::millis(arrival_ms);
  j.work = sim::millis(work_ms);
  return j;
}

ServerConfig config(ServerPolicy policy) {
  ServerConfig c;
  c.policy = policy;
  c.budget = sim::millis(2);
  c.period = sim::millis(10);
  c.quantum = sim::micros(100);
  return c;
}

TEST(AperiodicServerTest, BackgroundWaitsForIdle) {
  // Task busy [0,4); background job arriving at 0 with 1 ms work
  // completes at 5 ms.
  TaskSet set({task(1, 4, 10)});
  const auto r = serve_aperiodics(set, {job(1, 0, 1)},
                                  config(ServerPolicy::kBackground),
                                  sim::millis(20));
  ASSERT_EQ(r.finished, 1u);
  EXPECT_EQ(r.outcomes[0].completion, sim::millis(5));
  EXPECT_FALSE(r.periodic_deadline_missed);
}

TEST(AperiodicServerTest, SlackStealingPreemptsWhenSafe) {
  // Same scenario: slack at t=0 is 6 ms, so the job runs immediately.
  TaskSet set({task(1, 4, 10)});
  const auto r = serve_aperiodics(set, {job(1, 0, 1)},
                                  config(ServerPolicy::kSlackStealing),
                                  sim::millis(20));
  ASSERT_EQ(r.finished, 1u);
  EXPECT_EQ(r.outcomes[0].completion, sim::millis(1));
  EXPECT_FALSE(r.periodic_deadline_missed);
}

TEST(AperiodicServerTest, DeferrableRetainsBudgetAcrossIdle) {
  // Job arrives at 5 ms (server replenished at 0 with nothing to do).
  // Deferrable keeps the budget and serves immediately; polling lost it
  // and must wait for the next replenishment at 10 ms.
  TaskSet set({task(1, 1, 100)});
  const auto deferrable = serve_aperiodics(
      set, {job(1, 5, 1)}, config(ServerPolicy::kDeferrable), sim::millis(30));
  const auto polling = serve_aperiodics(
      set, {job(1, 5, 1)}, config(ServerPolicy::kPolling), sim::millis(30));
  ASSERT_EQ(deferrable.finished, 1u);
  ASSERT_EQ(polling.finished, 1u);
  EXPECT_EQ(deferrable.outcomes[0].completion, sim::millis(6));
  EXPECT_EQ(polling.outcomes[0].completion, sim::millis(11));
}

TEST(AperiodicServerTest, BudgetExhaustionDefersService) {
  // 5 ms of aperiodic work through a 2 ms/10 ms deferrable server takes
  // three replenishment periods.
  TaskSet set({task(1, 1, 100)});
  const auto r = serve_aperiodics(set, {job(1, 0, 5)},
                                  config(ServerPolicy::kDeferrable),
                                  sim::millis(50));
  ASSERT_EQ(r.finished, 1u);
  // 2 ms in [0,2), 2 ms in [10,12), 1 ms in [20,21).
  EXPECT_EQ(r.outcomes[0].completion, sim::millis(21));
}

TEST(AperiodicServerTest, ResponseTimeOrderingAcrossPolicies) {
  // With a loaded periodic set and a stream of jobs, mean response times
  // must order: slack stealing <= deferrable <= polling <= background.
  TaskSet set({task(1, 2, 8), task(2, 3, 16)});
  std::vector<AperiodicJob> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(job(static_cast<std::uint64_t>(i), 3 + i * 11, 1));
  }
  const auto horizon = sim::millis(400);
  const auto slack = serve_aperiodics(
      set, jobs, config(ServerPolicy::kSlackStealing), horizon);
  const auto deferrable =
      serve_aperiodics(set, jobs, config(ServerPolicy::kDeferrable), horizon);
  const auto polling =
      serve_aperiodics(set, jobs, config(ServerPolicy::kPolling), horizon);
  const auto background =
      serve_aperiodics(set, jobs, config(ServerPolicy::kBackground), horizon);
  ASSERT_EQ(slack.finished, jobs.size());
  ASSERT_EQ(background.finished, jobs.size());
  const double m_slack = slack.response_stats_ms().mean();
  const double m_def = deferrable.response_stats_ms().mean();
  const double m_poll = polling.response_stats_ms().mean();
  const double m_bg = background.response_stats_ms().mean();
  // Universally valid orderings: slack stealing dominates everything
  // (it serves whenever service is safe), and a deferrable server
  // dominates a polling server with the same (budget, period). Polling
  // vs background depends on load, so no assertion there.
  EXPECT_LE(m_slack, m_def + 1e-9);
  EXPECT_LE(m_slack, m_bg + 1e-9);
  EXPECT_LE(m_def, m_poll + 1e-9);
}

TEST(AperiodicServerTest, PeriodicDeadlinesSafeUnderSlackStealing) {
  // Saturate the server with continuous aperiodic work: slack stealing
  // must never break a periodic deadline.
  TaskSet set({task(1, 2, 5), task(2, 4, 20)});
  std::vector<AperiodicJob> jobs;
  for (int i = 0; i < 50; ++i) {
    jobs.push_back(job(static_cast<std::uint64_t>(i), i * 4, 3));
  }
  const auto r = serve_aperiodics(set, jobs,
                                  config(ServerPolicy::kSlackStealing),
                                  sim::millis(400));
  EXPECT_FALSE(r.periodic_deadline_missed);
}

TEST(AperiodicServerTest, UnfinishedJobsReportedAsSuch) {
  TaskSet set({task(1, 1, 100)});
  const auto r = serve_aperiodics(set, {job(1, 0, 1000)},
                                  config(ServerPolicy::kBackground),
                                  sim::millis(10));
  EXPECT_EQ(r.finished, 0u);
  EXPECT_FALSE(r.outcomes[0].finished());
}

TEST(AperiodicServerTest, FifoWithinTheServer) {
  TaskSet set({task(1, 1, 100)});
  const auto r = serve_aperiodics(
      set, {job(1, 0, 3), job(2, 1, 1)},
      config(ServerPolicy::kSlackStealing), sim::millis(50));
  ASSERT_EQ(r.finished, 2u);
  EXPECT_LT(r.outcomes[0].completion, r.outcomes[1].completion);
}

TEST(AperiodicServerTest, UnsortedJobsRejected) {
  TaskSet set({task(1, 1, 100)});
  EXPECT_THROW((void)serve_aperiodics(set, {job(1, 5, 1), job(2, 1, 1)},
                                      config(ServerPolicy::kBackground),
                                      sim::millis(10)),
               std::invalid_argument);
}

TEST(AperiodicServerTest, PolicyNames) {
  EXPECT_STREQ(to_string(ServerPolicy::kBackground), "background");
  EXPECT_STREQ(to_string(ServerPolicy::kPolling), "polling");
  EXPECT_STREQ(to_string(ServerPolicy::kDeferrable), "deferrable");
  EXPECT_STREQ(to_string(ServerPolicy::kSlackStealing), "slack_stealing");
}

}  // namespace
}  // namespace coeff::sched
