#include "flexray/clock_sync.hpp"

#include <gtest/gtest.h>

namespace coeff::flexray {
namespace {

TEST(FtmTest, DiscardCountFollowsSpec) {
  EXPECT_EQ(ftm_discard_count(1), 0);
  EXPECT_EQ(ftm_discard_count(2), 0);
  EXPECT_EQ(ftm_discard_count(3), 1);
  EXPECT_EQ(ftm_discard_count(7), 1);
  EXPECT_EQ(ftm_discard_count(8), 2);
  EXPECT_EQ(ftm_discard_count(100), 2);
}

TEST(FtmTest, MidpointOfTwo) {
  EXPECT_EQ(fault_tolerant_midpoint({sim::micros(10), sim::micros(20)}),
            sim::micros(15));
}

TEST(FtmTest, SingleValuePassesThrough) {
  EXPECT_EQ(fault_tolerant_midpoint({sim::micros(7)}), sim::micros(7));
}

TEST(FtmTest, OneOutlierDiscardedAtN3) {
  // n=3 -> k=1: midpoint of the single middle value.
  EXPECT_EQ(fault_tolerant_midpoint(
                {sim::micros(1), sim::micros(2), sim::seconds(100)}),
            sim::micros(2));
}

TEST(FtmTest, TwoOutliersDiscardedAtN8) {
  std::vector<sim::Time> values;
  for (int i = 1; i <= 6; ++i) values.push_back(sim::micros(i));
  values.push_back(sim::seconds(-100));
  values.push_back(sim::seconds(100));
  // k=2: extremes {1us..6us} minus one more from each end -> [2us, 5us].
  EXPECT_EQ(fault_tolerant_midpoint(values),
            sim::nanos((2000 + 5000) / 2));
}

TEST(FtmTest, EmptyThrows) {
  EXPECT_THROW((void)fault_tolerant_midpoint({}), std::invalid_argument);
}

TEST(LocalClockTest, DriftAccumulates) {
  LocalClock clock(100.0);  // +100 ppm
  // After 1 s of global time the local clock reads +100 us.
  EXPECT_EQ(clock.local_time(sim::seconds(1)),
            sim::seconds(1) + sim::micros(100));
}

TEST(LocalClockTest, CorrectionsApply) {
  LocalClock clock(100.0);
  clock.correct_offset(sim::micros(100));
  EXPECT_EQ(clock.local_time(sim::seconds(1)), sim::seconds(1));
  clock.correct_rate(100.0);  // cancels the oscillator error
  EXPECT_NEAR(clock.effective_rate_error(), 0.0, 1e-12);
}

TEST(ClockSyncTest, DriftingClocksConverge) {
  ClockSyncOptions opt;
  opt.num_nodes = 10;
  opt.sync_nodes = 4;
  opt.max_rate_error_ppm = 150.0;
  const auto result = simulate_clock_sync(opt, 50);
  ASSERT_EQ(result.max_deviation_history.size(), 50u);
  // Uncorrected, 300 ppm relative drift over 0.5 s would be 150 us;
  // synchronized clocks must stay well inside a couple of microseconds.
  EXPECT_LT(result.final_deviation(), sim::micros(5));
  // And the deviation must not grow over time.
  EXPECT_LE(result.max_deviation_history.back(),
            result.max_deviation_history.front() + sim::micros(1));
}

TEST(ClockSyncTest, WithoutSyncClocksDiverge) {
  // Sanity check of the drift model itself: 150 ppm over 10 ms is
  // 1.5 us per round; two opposite-drift clocks separate linearly.
  LocalClock fast(150.0), slow(-150.0);
  const auto d1 = fast.local_time(sim::millis(10)) -
                  slow.local_time(sim::millis(10));
  const auto d2 = fast.local_time(sim::millis(100)) -
                  slow.local_time(sim::millis(100));
  EXPECT_GT(d2, d1 * 9);
}

TEST(ClockSyncTest, ToleratesByzantineSyncNode) {
  ClockSyncOptions opt;
  opt.num_nodes = 10;
  opt.sync_nodes = 5;
  opt.byzantine_nodes = {2};  // one sync node lies wildly
  const auto result = simulate_clock_sync(opt, 50);
  EXPECT_LT(result.final_deviation(), sim::micros(10));
}

TEST(ClockSyncTest, DeterministicUnderSeed) {
  ClockSyncOptions opt;
  opt.seed = 99;
  const auto a = simulate_clock_sync(opt, 10);
  const auto b = simulate_clock_sync(opt, 10);
  EXPECT_EQ(a.max_deviation_history.back(), b.max_deviation_history.back());
}

TEST(ClockSyncTest, BadConfigurationRejected) {
  ClockSyncOptions opt;
  opt.num_nodes = 1;
  EXPECT_THROW((void)simulate_clock_sync(opt, 1), std::invalid_argument);
  opt.num_nodes = 4;
  opt.sync_nodes = 5;
  EXPECT_THROW((void)simulate_clock_sync(opt, 1), std::invalid_argument);
}

}  // namespace
}  // namespace coeff::flexray
