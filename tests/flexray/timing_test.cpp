#include "flexray/timing.hpp"

#include <gtest/gtest.h>

#include "units/convert.hpp"

namespace coeff::flexray {
namespace {

using units::CycleIndex;
using units::MinislotId;
using units::SlotId;
using units::to_cycle_time;

CycleTiming default_timing() { return CycleTiming(ClusterConfig{}); }

TEST(TimingTest, CycleIndexing) {
  const auto t = default_timing();
  EXPECT_EQ(t.cycle_index(sim::Time::zero()), CycleIndex{0});
  EXPECT_EQ(t.cycle_index(sim::millis(4)), CycleIndex{0});
  EXPECT_EQ(t.cycle_index(sim::millis(5)), CycleIndex{1});
  EXPECT_EQ(t.cycle_index(sim::millis(12)), CycleIndex{2});
}

TEST(TimingTest, NegativeTimeThrows) {
  const auto t = default_timing();
  EXPECT_THROW((void)t.cycle_index(sim::millis(-1)), std::invalid_argument);
}

TEST(TimingTest, CycleStartInvertsIndex) {
  const auto t = default_timing();
  for (std::int64_t c : {0, 1, 7, 1000}) {
    EXPECT_EQ(t.cycle_index(t.cycle_start(CycleIndex{c})), CycleIndex{c});
  }
}

TEST(TimingTest, OffsetInCycle) {
  const auto t = default_timing();
  EXPECT_EQ(t.offset_in_cycle(sim::millis(12)), to_cycle_time(sim::millis(2)));
  EXPECT_EQ(t.offset_in_cycle(sim::millis(5)), units::CycleTime::zero());
}

TEST(TimingTest, SegmentBoundaries) {
  const auto t = default_timing();  // static 3.2ms, dynamic 0.4ms
  EXPECT_EQ(t.segment_at(units::CycleTime::zero()), Segment::kStatic);
  EXPECT_EQ(t.segment_at(to_cycle_time(sim::micros(3199))), Segment::kStatic);
  EXPECT_EQ(t.segment_at(to_cycle_time(sim::micros(3200))), Segment::kDynamic);
  EXPECT_EQ(t.segment_at(to_cycle_time(sim::micros(3599))), Segment::kDynamic);
  EXPECT_EQ(t.segment_at(to_cycle_time(sim::micros(3600))),
            Segment::kNetworkIdle);
}

TEST(TimingTest, SymbolWindowSegment) {
  ClusterConfig cfg;
  cfg.gd_symbol_window = units::Macroticks{100};
  const CycleTiming t(cfg);
  EXPECT_EQ(t.segment_at(to_cycle_time(sim::micros(3600))),
            Segment::kSymbolWindow);
  EXPECT_EQ(t.segment_at(to_cycle_time(sim::micros(3700))),
            Segment::kNetworkIdle);
}

TEST(TimingTest, StaticSlotStart) {
  const auto t = default_timing();
  EXPECT_EQ(t.static_slot_start(CycleIndex{0}, SlotId{1}), sim::Time::zero());
  EXPECT_EQ(t.static_slot_start(CycleIndex{0}, SlotId{2}), sim::micros(40));
  EXPECT_EQ(t.static_slot_start(CycleIndex{1}, SlotId{1}), sim::millis(5));
  EXPECT_EQ(t.static_slot_start(CycleIndex{2}, SlotId{80}),
            sim::millis(10) + sim::micros(79 * 40));
}

TEST(TimingTest, SlotOutOfRangeThrows) {
  const auto t = default_timing();
  EXPECT_THROW((void)t.static_slot_start(CycleIndex{0}, SlotId{0}),
               std::invalid_argument);
  EXPECT_THROW((void)t.static_slot_start(CycleIndex{0}, SlotId{81}),
               std::invalid_argument);
}

TEST(TimingTest, StaticSlotAtInvertsStart) {
  const auto t = default_timing();
  for (std::int64_t slot = 1; slot <= 80; ++slot) {
    const auto off = t.offset_in_cycle(
        t.static_slot_start(CycleIndex{0}, SlotId{slot}));
    EXPECT_EQ(t.static_slot_at(off), SlotId{slot});
    EXPECT_EQ(t.static_slot_at(off + to_cycle_time(sim::micros(39))),
              SlotId{slot});
  }
  // In the dynamic segment there is no static slot.
  EXPECT_EQ(t.static_slot_at(to_cycle_time(sim::micros(3200))), std::nullopt);
}

TEST(TimingTest, MinislotStart) {
  const auto t = default_timing();
  EXPECT_EQ(t.minislot_start(CycleIndex{0}, MinislotId{0}), sim::micros(3200));
  EXPECT_EQ(t.minislot_start(CycleIndex{0}, MinislotId{1}), sim::micros(3208));
  EXPECT_EQ(t.minislot_start(CycleIndex{1}, MinislotId{0}),
            sim::millis(5) + sim::micros(3200));
}

TEST(TimingTest, MinislotOutOfRangeThrows) {
  const auto t = default_timing();
  EXPECT_THROW((void)t.minislot_start(CycleIndex{0}, MinislotId{-1}),
               std::invalid_argument);
  EXPECT_THROW((void)t.minislot_start(CycleIndex{0}, MinislotId{50}),
               std::invalid_argument);
}

TEST(TimingTest, NextCycleAtOrAfter) {
  const auto t = default_timing();
  EXPECT_EQ(t.next_cycle_at_or_after(sim::Time::zero()), CycleIndex{0});
  EXPECT_EQ(t.next_cycle_at_or_after(sim::nanos(1)), CycleIndex{1});
  EXPECT_EQ(t.next_cycle_at_or_after(sim::millis(5)), CycleIndex{1});
  EXPECT_EQ(t.next_cycle_at_or_after(sim::millis(5) + sim::nanos(1)),
            CycleIndex{2});
}

TEST(TimingTest, SegmentNames) {
  EXPECT_STREQ(to_string(Segment::kStatic), "static");
  EXPECT_STREQ(to_string(Segment::kDynamic), "dynamic");
  EXPECT_STREQ(to_string(Segment::kSymbolWindow), "symbol");
  EXPECT_STREQ(to_string(Segment::kNetworkIdle), "idle");
}

TEST(TimingTest, InvalidConfigRejectedAtConstruction) {
  ClusterConfig cfg;
  cfg.g_number_of_static_slots = 0;
  EXPECT_THROW(CycleTiming{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace coeff::flexray
