#include "flexray/chi.hpp"

#include <gtest/gtest.h>

namespace coeff::flexray {
namespace {

using units::SlotId;

PendingMessage msg(std::uint64_t instance, int priority,
                   sim::Time deadline = sim::Time::max()) {
  PendingMessage m;
  m.instance = instance;
  m.frame_id = FrameId{static_cast<std::uint16_t>(80 + priority)};
  m.payload_bits = 128;
  m.priority = priority;
  m.deadline = deadline;
  return m;
}

TEST(StaticBufferSetTest, WriteReadClear) {
  StaticBufferSet buffers;
  buffers.add_slot(SlotId{5});
  EXPECT_TRUE(buffers.owns(SlotId{5}));
  EXPECT_FALSE(buffers.owns(SlotId{6}));
  EXPECT_FALSE(buffers.read(SlotId{5}).has_value());
  EXPECT_FALSE(buffers.write(SlotId{5}, msg(1, 0)));
  ASSERT_TRUE(buffers.read(SlotId{5}).has_value());
  EXPECT_EQ(buffers.read(SlotId{5})->instance, 1u);
  buffers.clear(SlotId{5});
  EXPECT_FALSE(buffers.read(SlotId{5}).has_value());
}

TEST(StaticBufferSetTest, OverwriteReportsPreviousValue) {
  StaticBufferSet buffers;
  buffers.add_slot(SlotId{2});
  EXPECT_FALSE(buffers.write(SlotId{2}, msg(1, 0)));
  EXPECT_TRUE(buffers.write(SlotId{2}, msg(2, 0)));  // latest value wins
  EXPECT_EQ(buffers.read(SlotId{2})->instance, 2u);
}

TEST(StaticBufferSetTest, WriteToUnownedSlotThrows) {
  StaticBufferSet buffers;
  EXPECT_THROW(buffers.write(SlotId{1}, msg(1, 0)), std::invalid_argument);
}

TEST(StaticBufferSetTest, ReadUnownedSlotIsEmpty) {
  StaticBufferSet buffers;
  EXPECT_FALSE(buffers.read(SlotId{9}).has_value());
  EXPECT_NO_THROW(buffers.clear(SlotId{9}));
}

TEST(StaticBufferSetTest, OwnedSlotsSorted) {
  StaticBufferSet buffers;
  buffers.add_slot(SlotId{9});
  buffers.add_slot(SlotId{1});
  buffers.add_slot(SlotId{5});
  EXPECT_EQ(buffers.owned_slots(),
            (std::vector<SlotId>{SlotId{1}, SlotId{5}, SlotId{9}}));
}

TEST(StaticBufferSetTest, PendingCount) {
  StaticBufferSet buffers;
  buffers.add_slot(SlotId{1});
  buffers.add_slot(SlotId{2});
  EXPECT_EQ(buffers.pending_count(), 0u);
  buffers.write(SlotId{1}, msg(1, 0));
  EXPECT_EQ(buffers.pending_count(), 1u);
}

TEST(DynamicQueueTest, PriorityOrder) {
  DynamicQueue q;
  q.push(msg(1, 5));
  q.push(msg(2, 1));
  q.push(msg(3, 3));
  ASSERT_TRUE(q.peek_head().has_value());
  EXPECT_EQ(q.peek_head()->instance, 2u);
}

TEST(DynamicQueueTest, FifoWithinPriority) {
  DynamicQueue q;
  q.push(msg(1, 2));
  q.push(msg(2, 2));
  q.push(msg(3, 2));
  EXPECT_EQ(q.peek_head()->instance, 1u);
  EXPECT_TRUE(q.pop(1));
  EXPECT_EQ(q.peek_head()->instance, 2u);
}

TEST(DynamicQueueTest, PeekByFrameId) {
  DynamicQueue q;
  q.push(msg(1, 5));
  q.push(msg(2, 1));
  const auto found = q.peek(FrameId{85});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->instance, 1u);
  EXPECT_FALSE(q.peek(FrameId{99}).has_value());
}

TEST(DynamicQueueTest, PopSpecificInstance) {
  DynamicQueue q;
  q.push(msg(1, 1));
  q.push(msg(2, 2));
  EXPECT_TRUE(q.pop(2));
  EXPECT_FALSE(q.pop(2));
  EXPECT_EQ(q.size(), 1u);
}

TEST(DynamicQueueTest, DropExpiredRemovesOnlyPastDeadline) {
  DynamicQueue q;
  q.push(msg(1, 1, sim::millis(5)));
  q.push(msg(2, 2, sim::millis(15)));
  q.push(msg(3, 3, sim::millis(10)));
  const auto dropped = q.drop_expired(sim::millis(12));
  ASSERT_EQ(dropped.size(), 2u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.peek_head()->instance, 2u);
}

TEST(DynamicQueueTest, DropExpiredExactDeadlineSurvives) {
  DynamicQueue q;
  q.push(msg(1, 1, sim::millis(10)));
  EXPECT_TRUE(q.drop_expired(sim::millis(10)).empty());
  EXPECT_EQ(q.size(), 1u);
}

TEST(DynamicQueueTest, EmptyBehaviour) {
  DynamicQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.peek_head().has_value());
  EXPECT_FALSE(q.pop(1));
  EXPECT_TRUE(q.drop_expired(sim::seconds(1)).empty());
}

TEST(DynamicQueueTest, ContentsInDispatchOrder) {
  DynamicQueue q;
  q.push(msg(1, 9));
  q.push(msg(2, 1));
  q.push(msg(3, 5));
  const auto& contents = q.contents();
  ASSERT_EQ(contents.size(), 3u);
  EXPECT_EQ(contents[0].instance, 2u);
  EXPECT_EQ(contents[1].instance, 3u);
  EXPECT_EQ(contents[2].instance, 1u);
}

TEST(NodeTest, IdentityAndOwnership) {
  Node node(units::NodeId{3}, "brake-ecu");
  EXPECT_EQ(node.id(), units::NodeId{3});
  EXPECT_EQ(node.name(), "brake-ecu");
  node.add_dynamic_frame_id(FrameId{90});
  node.add_dynamic_frame_id(FrameId{95});
  EXPECT_EQ(node.dynamic_frame_ids().size(), 2u);
  node.static_buffers().add_slot(SlotId{4});
  EXPECT_TRUE(node.static_buffers().owns(SlotId{4}));
}

}  // namespace
}  // namespace coeff::flexray
