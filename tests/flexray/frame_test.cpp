#include "flexray/frame.hpp"

#include <gtest/gtest.h>

namespace coeff::flexray {
namespace {

std::vector<std::uint8_t> payload(std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(i * 7);
  return p;
}

TEST(FrameTest, MakeComputesConsistentCrcs) {
  const Frame f = Frame::make(ChannelId::kA, FrameId{17}, 3, payload(16));
  EXPECT_TRUE(f.verify());
}

TEST(FrameTest, HeaderFields) {
  const Frame f = Frame::make(ChannelId::kA, FrameId{17}, 3, payload(16), true, false);
  EXPECT_EQ(f.header().id, FrameId{17});
  EXPECT_EQ(f.header().payload_words, 8);
  EXPECT_EQ(f.header().cycle_count, 3);
  EXPECT_TRUE(f.header().sync);
  EXPECT_FALSE(f.header().startup);
}

TEST(FrameTest, OddPayloadPaddedToWord) {
  const Frame f = Frame::make(ChannelId::kA, FrameId{1}, 0, payload(5));
  EXPECT_EQ(f.payload().size(), 6u);
  EXPECT_EQ(f.header().payload_words, 3);
  EXPECT_TRUE(f.verify());
}

TEST(FrameTest, SizeBitsCountsHeaderPayloadTrailer) {
  const Frame f = Frame::make(ChannelId::kA, FrameId{1}, 0, payload(10));
  EXPECT_EQ(f.size_bits(), 40 + 10 * 8 + 24);
}

TEST(FrameTest, InvalidFrameIdRejected) {
  EXPECT_THROW(Frame::make(ChannelId::kA, FrameId{0}, 0, {}), std::invalid_argument);
  EXPECT_THROW(Frame::make(ChannelId::kA, FrameId{2048}, 0, {}), std::invalid_argument);
  EXPECT_NO_THROW(Frame::make(ChannelId::kA, FrameId{2047}, 0, {}));
}

TEST(FrameTest, OversizedPayloadRejected) {
  EXPECT_THROW(Frame::make(ChannelId::kA, FrameId{1}, 0, payload(255)),
               std::invalid_argument);
  EXPECT_NO_THROW(Frame::make(ChannelId::kA, FrameId{1}, 0, payload(254)));
}

TEST(FrameTest, PayloadCorruptionDetected) {
  Frame f = Frame::make(ChannelId::kA, FrameId{9}, 1, payload(32));
  f.corrupt_payload_bit(100);
  EXPECT_FALSE(f.verify());
}

TEST(FrameTest, EveryPayloadBitPositionDetected) {
  for (std::size_t bit = 0; bit < 64; ++bit) {
    Frame f = Frame::make(ChannelId::kA, FrameId{9}, 1, payload(8));
    f.corrupt_payload_bit(bit);
    EXPECT_FALSE(f.verify()) << "bit " << bit;
  }
}

TEST(FrameTest, HeaderCorruptionDetected) {
  Frame f = Frame::make(ChannelId::kB, FrameId{33}, 0, payload(4));
  f.corrupt_header_bit(2);
  EXPECT_FALSE(f.verify());
}

TEST(FrameTest, CorruptingNullPayloadFallsBackToHeader) {
  Frame f = Frame::make_null(ChannelId::kA, FrameId{5}, 0);
  f.corrupt_payload_bit(0);
  EXPECT_FALSE(f.verify());
}

TEST(FrameTest, NullFrameFlagSet) {
  const Frame f = Frame::make_null(ChannelId::kA, FrameId{5}, 0);
  EXPECT_TRUE(f.header().null_frame);
  EXPECT_TRUE(f.verify());
  EXPECT_EQ(f.payload().size(), 0u);
}

TEST(FrameTest, ChannelsUseDifferentCrcInit) {
  // The same content must carry different frame CRCs on A and B so that
  // cross-channel misrouting is detectable.
  const Frame fa = Frame::make(ChannelId::kA, FrameId{7}, 0, payload(8));
  const Frame fb = Frame::make(ChannelId::kB, FrameId{7}, 0, payload(8));
  EXPECT_NE(fa.trailer_crc(), fb.trailer_crc());
  EXPECT_TRUE(fa.verify());
  EXPECT_TRUE(fb.verify());
}

TEST(FrameTest, HeaderCrcDependsOnEveryInput) {
  const auto base = header_crc(false, false, FrameId{100}, 10);
  EXPECT_NE(base, header_crc(true, false, FrameId{100}, 10));
  EXPECT_NE(base, header_crc(false, true, FrameId{100}, 10));
  EXPECT_NE(base, header_crc(false, false, FrameId{101}, 10));
  EXPECT_NE(base, header_crc(false, false, FrameId{100}, 11));
}

TEST(CrcTest, Crc11IsElevenBits) {
  for (FrameId id : {FrameId{1}, FrameId{100}, FrameId{2047}}) {
    EXPECT_LT(header_crc(false, false, id, 0), 1u << 11);
  }
}

TEST(CrcTest, Crc24IsTwentyFourBits) {
  const auto crc = frame_crc(ChannelId::kA, {0xDE, 0xAD, 0xBE, 0xEF});
  EXPECT_LT(crc, 1u << 24);
}

TEST(CrcTest, SingleBitChangesCrc) {
  std::vector<std::uint8_t> bytes{0x01, 0x02, 0x03, 0x04};
  const auto base = frame_crc(ChannelId::kA, bytes);
  for (std::size_t i = 0; i < bytes.size() * 8; ++i) {
    auto copy = bytes;
    copy[i / 8] ^= static_cast<std::uint8_t>(0x80u >> (i % 8));
    EXPECT_NE(frame_crc(ChannelId::kA, copy), base) << "bit " << i;
  }
}

TEST(CrcTest, BitLevelCrcMatchesKnownWidthBounds) {
  std::vector<bool> bits(20, true);
  const auto crc = crc_bits(bits, 0x385, 11, 0x1A);
  EXPECT_LT(crc, 1u << 11);
}

TEST(FrameTest, FrameBytesLayoutLength) {
  const Frame f = Frame::make(ChannelId::kA, FrameId{1}, 0, payload(6));
  const auto bytes = frame_bytes(f.header(), f.payload());
  EXPECT_EQ(bytes.size(), 5u + 6u);  // 40-bit header + payload
}

}  // namespace
}  // namespace coeff::flexray
