#include "flexray/topology.hpp"

#include <gtest/gtest.h>

namespace coeff::flexray {
namespace {

TEST(TopologyTest, BusDelayIsDistanceOverSpeed) {
  // Nodes at 0 m and 4 m: 4 m / 0.2 m/ns = 20 ns.
  const auto t = Topology::bus({0.0, 4.0});
  EXPECT_EQ(t.propagation_delay(0, 1), sim::nanos(20));
  EXPECT_EQ(t.propagation_delay(1, 0), sim::nanos(20));
  EXPECT_EQ(t.propagation_delay(0, 0), sim::Time::zero());
}

TEST(TopologyTest, BusWorstCaseIsEndToEnd) {
  const auto t = Topology::bus({0.0, 1.0, 7.0, 3.0});
  EXPECT_EQ(t.worst_case_delay(), sim::nanos(35));  // 7 m
}

TEST(TopologyTest, StarAddsCouplerDelay) {
  // Stubs 2 m and 4 m: 6 m wire (30 ns) + 250 ns coupler.
  const auto t = Topology::star({2.0, 4.0});
  EXPECT_EQ(t.propagation_delay(0, 1), sim::nanos(30) + kStarCouplerDelay);
}

TEST(TopologyTest, HybridCrossStarPaysTrunkAndSecondCoupler) {
  const auto t = Topology::hybrid({0, 0, 1, 1}, {1.0, 1.0, 1.0, 1.0}, 10.0);
  // Same star: 2 m wire + one coupler.
  EXPECT_EQ(t.propagation_delay(0, 1), sim::nanos(10) + kStarCouplerDelay);
  // Across stars: 2 m stubs + 10 m trunk + two couplers.
  EXPECT_EQ(t.propagation_delay(0, 2),
            sim::nanos(10) + sim::nanos(50) + kStarCouplerDelay * 2);
}

TEST(TopologyTest, DelaysAreSymmetric) {
  const auto t = Topology::hybrid({0, 1, 0, 1}, {1.5, 2.5, 0.5, 3.0}, 12.0);
  for (std::size_t a = 0; a < t.node_count(); ++a) {
    for (std::size_t b = 0; b < t.node_count(); ++b) {
      EXPECT_EQ(t.propagation_delay(a, b), t.propagation_delay(b, a));
    }
  }
}

TEST(TopologyTest, BudgetCheckAgainstActionPointOffset) {
  ClusterConfig cfg;  // action point offset = 2 MT = 2 us
  // 24 m bus: 120 ns — fits comfortably.
  EXPECT_TRUE(Topology::bus({0.0, 24.0}).fits_budget(cfg));
  // 500 m bus: 2.5 us — exceeds the 2 us budget.
  EXPECT_FALSE(Topology::bus({0.0, 500.0}).fits_budget(cfg));
}

TEST(TopologyTest, StarCouplersEatIntoTheBudget) {
  ClusterConfig cfg;
  cfg.gd_minislot_action_point_offset = units::Macroticks{1};  // 1 us budget
  // Two stars + trunk: 2x250 ns couplers + 60 m of wire = 800 ns: fits.
  EXPECT_TRUE(Topology::hybrid({0, 1}, {0.0, 0.0}, 60.0).fits_budget(cfg));
  // 120 m of wire pushes past 1 us.
  EXPECT_FALSE(Topology::hybrid({0, 1}, {0.0, 0.0}, 120.0).fits_budget(cfg));
}

TEST(TopologyTest, ValidationErrors) {
  EXPECT_THROW((void)Topology::bus({1.0}), std::invalid_argument);
  EXPECT_THROW((void)Topology::bus({-1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW((void)Topology::star({3.0}), std::invalid_argument);
  EXPECT_THROW((void)Topology::hybrid({0, 2}, {1.0, 1.0}, 5.0),
               std::invalid_argument);
  EXPECT_THROW((void)Topology::hybrid({0}, {1.0, 1.0}, 5.0),
               std::invalid_argument);
  EXPECT_THROW((void)Topology::hybrid({0, 1}, {1.0, 1.0}, -5.0),
               std::invalid_argument);
  const auto t = Topology::bus({0.0, 1.0});
  EXPECT_THROW((void)t.propagation_delay(0, 5), std::invalid_argument);
}

TEST(TopologyTest, KindNames) {
  EXPECT_STREQ(to_string(TopologyKind::kBus), "bus");
  EXPECT_STREQ(to_string(TopologyKind::kStar), "star");
  EXPECT_STREQ(to_string(TopologyKind::kHybrid), "hybrid");
}

}  // namespace
}  // namespace coeff::flexray
