#include "flexray/config.hpp"

#include <gtest/gtest.h>

namespace coeff::flexray {
namespace {

TEST(ConfigTest, DefaultsValidate) {
  ClusterConfig cfg;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigTest, DerivedDurations) {
  ClusterConfig cfg;  // 5000 MT x 1 us
  EXPECT_EQ(cfg.cycle_duration(), sim::millis(5));
  EXPECT_EQ(cfg.static_slot_duration(), sim::micros(40));
  EXPECT_EQ(cfg.static_segment_duration(), sim::micros(40 * 80));
  EXPECT_EQ(cfg.minislot_duration(), sim::micros(8));
  EXPECT_EQ(cfg.dynamic_segment_duration(), sim::micros(8 * 50));
}

TEST(ConfigTest, NetworkIdleTimeIsRemainder) {
  ClusterConfig cfg;
  EXPECT_EQ(cfg.network_idle_time(),
            cfg.cycle_duration() - cfg.static_segment_duration() -
                cfg.dynamic_segment_duration());
  EXPECT_GE(cfg.network_idle_time(), sim::Time::zero());
}

TEST(ConfigTest, SegmentsExceedingCycleRejected) {
  ClusterConfig cfg;
  cfg.g_number_of_static_slots = 200;  // 200 * 40 = 8000 MT > 5000 MT
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigTest, NonPositiveParametersRejected) {
  for (auto mutate : std::vector<void (*)(ClusterConfig&)>{
           [](ClusterConfig& c) { c.gd_macrotick = sim::Time::zero(); },
           [](ClusterConfig& c) { c.g_macro_per_cycle = units::Macroticks{0}; },
           [](ClusterConfig& c) { c.g_number_of_static_slots = 0; },
           [](ClusterConfig& c) { c.gd_static_slot = units::Macroticks{-1}; },
           [](ClusterConfig& c) { c.gd_minislot = units::Macroticks{0}; },
           [](ClusterConfig& c) { c.bus_bit_rate = 0; },
           [](ClusterConfig& c) { c.num_nodes = 0; },
       }) {
    ClusterConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  }
}

TEST(ConfigTest, ActionPointOffsetMustFitMinislot) {
  ClusterConfig cfg;
  cfg.gd_minislot_action_point_offset = cfg.gd_minislot;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigTest, LatestTxDefaultsToWholeSegment) {
  ClusterConfig cfg;
  cfg.p_latest_tx = units::MinislotId{0};
  EXPECT_EQ(cfg.latest_tx_minislot(),
            units::MinislotId{cfg.g_number_of_minislots});
  cfg.p_latest_tx = units::MinislotId{10};
  EXPECT_EQ(cfg.latest_tx_minislot(), units::MinislotId{10});
}

TEST(ConfigTest, LatestTxBeyondSegmentRejected) {
  ClusterConfig cfg;
  cfg.p_latest_tx = units::MinislotId{cfg.g_number_of_minislots + 1};
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ConfigTest, TransmissionTimeRoundsUp) {
  ClusterConfig cfg;
  cfg.bus_bit_rate = 10'000'000;  // 10 Mb/s -> 100 ns per bit
  EXPECT_EQ(cfg.transmission_time(1), sim::nanos(100));
  EXPECT_EQ(cfg.transmission_time(10), sim::micros(1));
  EXPECT_EQ(cfg.transmission_time(0), sim::Time::zero());
}

TEST(ConfigTest, StaticSlotCapacity) {
  ClusterConfig cfg;  // 40 us slot at 10 Mb/s
  EXPECT_EQ(cfg.static_slot_capacity_bits(), 400);
  cfg.bus_bit_rate = 50'000'000;
  EXPECT_EQ(cfg.static_slot_capacity_bits(), 2000);
}

TEST(ConfigTest, MinislotsForIncludesIdlePhase) {
  ClusterConfig cfg;
  cfg.bus_bit_rate = 10'000'000;  // minislot = 8 us = 80 bits
  // 80 bits -> 1 minislot + 1 idle phase = 2
  EXPECT_EQ(cfg.minislots_for(80), 2);
  // 81 bits -> 2 minislots + idle = 3
  EXPECT_EQ(cfg.minislots_for(81), 3);
}

TEST(ConfigTest, StaticSuiteUsesRemainingBandwidth) {
  const auto cfg80 = ClusterConfig::static_suite(80);
  EXPECT_EQ(cfg80.g_number_of_static_slots, 80);
  EXPECT_EQ(cfg80.g_number_of_minislots, (5000 - 80 * 40) / 8);  // 225
  const auto cfg120 = ClusterConfig::static_suite(120);
  EXPECT_EQ(cfg120.g_number_of_minislots, (5000 - 120 * 40) / 8);  // 25
  // More static slots leave less dynamic bandwidth (the paper's point
  // about 120-slot configurations).
  EXPECT_LT(cfg120.g_number_of_minislots, cfg80.g_number_of_minislots);
}

TEST(ConfigTest, StaticSuiteOverflowThrows) {
  EXPECT_THROW((void)ClusterConfig::static_suite(126), std::invalid_argument);
}

TEST(ConfigTest, DynamicSuiteMatchesPaperParameters) {
  for (std::int64_t m : {25, 50, 75, 100}) {
    const auto cfg = ClusterConfig::dynamic_suite(m);
    EXPECT_EQ(cfg.g_number_of_minislots, m);
    EXPECT_EQ(cfg.g_number_of_static_slots, 80);
    EXPECT_EQ(cfg.gd_minislot, units::Macroticks{8});
    EXPECT_NO_THROW(cfg.validate());
  }
}

TEST(ConfigTest, AppSuiteHasOneMillisecondCycle) {
  const auto cfg = ClusterConfig::app_suite();
  EXPECT_EQ(cfg.cycle_duration(), sim::millis(1));
  EXPECT_EQ(cfg.static_segment_duration(), sim::micros(750));
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigTest, DescribeMentionsKeyNumbers) {
  const std::string desc = describe(ClusterConfig{});
  EXPECT_NE(desc.find("5.000ms"), std::string::npos);
  EXPECT_NE(desc.find("nodes=10"), std::string::npos);
}

TEST(ConfigTest, ChannelNames) {
  EXPECT_STREQ(to_string(ChannelId::kA), "A");
  EXPECT_STREQ(to_string(ChannelId::kB), "B");
}

}  // namespace
}  // namespace coeff::flexray
