#include "flexray/codec.hpp"

#include <gtest/gtest.h>

namespace coeff::flexray {
namespace {

std::vector<std::uint8_t> payload(std::size_t n) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(0xA5u ^ (i * 31));
  }
  return p;
}

TEST(CodecTest, RoundTripDataFrame) {
  const Frame original = Frame::make(ChannelId::kA, FrameId{42}, 7, payload(16), true);
  const auto wire = encode_frame(original);
  const auto decoded = decode_frame(ChannelId::kA, wire);
  ASSERT_TRUE(decoded.ok()) << to_string(*decoded.error);
  EXPECT_EQ(decoded.frame->header().id, FrameId{42});
  EXPECT_EQ(decoded.frame->header().cycle_count, 7);
  EXPECT_TRUE(decoded.frame->header().sync);
  EXPECT_EQ(decoded.frame->payload(), original.payload());
  EXPECT_EQ(decoded.frame->trailer_crc(), original.trailer_crc());
  EXPECT_TRUE(decoded.frame->verify());
}

TEST(CodecTest, RoundTripNullFrame) {
  const Frame original = Frame::make_null(ChannelId::kB, FrameId{9}, 3);
  const auto decoded = decode_frame(ChannelId::kB, encode_frame(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.frame->header().null_frame);
  EXPECT_EQ(decoded.frame->payload().size(), 0u);
}

TEST(CodecTest, RoundTripAllPayloadSizes) {
  for (std::size_t n : {0u, 2u, 64u, 128u, 254u}) {
    const Frame f = Frame::make(ChannelId::kA, FrameId{100}, 0, payload(n));
    const auto decoded = decode_frame(ChannelId::kA, encode_frame(f));
    ASSERT_TRUE(decoded.ok()) << "payload " << n;
    EXPECT_EQ(decoded.frame->payload().size(), f.payload().size());
  }
}

TEST(CodecTest, WireSizeMatchesFrameSize) {
  const Frame f = Frame::make(ChannelId::kA, FrameId{5}, 0, payload(20));
  EXPECT_EQ(static_cast<std::int64_t>(encode_frame(f).size()) * 8,
            f.size_bits());
}

TEST(CodecTest, TruncatedBufferRejected) {
  const auto wire = encode_frame(Frame::make(ChannelId::kA, FrameId{5}, 0, payload(4)));
  for (std::size_t cut : {0u, 4u, 7u}) {
    std::vector<std::uint8_t> shorter(wire.begin(),
                                      wire.begin() +
                                          static_cast<std::ptrdiff_t>(cut));
    const auto decoded = decode_frame(ChannelId::kA, shorter);
    EXPECT_FALSE(decoded.ok());
    EXPECT_EQ(*decoded.error, DecodeError::kTruncated);
  }
}

TEST(CodecTest, LengthMismatchRejected) {
  auto wire = encode_frame(Frame::make(ChannelId::kA, FrameId{5}, 0, payload(4)));
  wire.push_back(0x00);  // extra byte: header length no longer matches
  const auto decoded = decode_frame(ChannelId::kA, wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(*decoded.error, DecodeError::kLengthMismatch);
}

TEST(CodecTest, EveryPayloadBitFlipCaught) {
  const Frame f = Frame::make(ChannelId::kA, FrameId{77}, 1, payload(8));
  const auto wire = encode_frame(f);
  for (std::size_t bit = 5 * 8; bit < (wire.size() - 3) * 8; ++bit) {
    auto damaged = wire;
    damaged[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
    const auto decoded = decode_frame(ChannelId::kA, damaged);
    EXPECT_FALSE(decoded.ok()) << "bit " << bit;
    EXPECT_EQ(*decoded.error, DecodeError::kFrameCrc) << "bit " << bit;
  }
}

TEST(CodecTest, HeaderCorruptionCaught) {
  const auto wire = encode_frame(Frame::make(ChannelId::kA, FrameId{77}, 1, payload(8)));
  // Flip a frame-id bit (bits 5..15): header CRC must catch it.
  auto damaged = wire;
  damaged[1] ^= 0x10;  // inside the frame id field
  const auto decoded = decode_frame(ChannelId::kA, damaged);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(*decoded.error == DecodeError::kHeaderCrc ||
              *decoded.error == DecodeError::kBadFrameId);
}

TEST(CodecTest, TrailerCorruptionCaught) {
  auto wire = encode_frame(Frame::make(ChannelId::kB, FrameId{12}, 0, payload(8)));
  wire.back() ^= 0x01;
  const auto decoded = decode_frame(ChannelId::kB, wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(*decoded.error, DecodeError::kFrameCrc);
}

TEST(CodecTest, CrossChannelMisroutingDetected) {
  // A frame encoded for channel A must not decode on channel B: the
  // per-channel frame-CRC init values differ by design.
  const auto wire = encode_frame(Frame::make(ChannelId::kA, FrameId{12}, 0, payload(8)));
  const auto decoded = decode_frame(ChannelId::kB, wire);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(*decoded.error, DecodeError::kFrameCrc);
}

TEST(CodecTest, ErrorNames) {
  EXPECT_STREQ(to_string(DecodeError::kTruncated), "truncated");
  EXPECT_STREQ(to_string(DecodeError::kFrameCrc), "frame_crc");
  EXPECT_STREQ(to_string(DecodeError::kHeaderCrc), "header_crc");
  EXPECT_STREQ(to_string(DecodeError::kLengthMismatch), "length_mismatch");
  EXPECT_STREQ(to_string(DecodeError::kBadFrameId), "bad_frame_id");
}

}  // namespace
}  // namespace coeff::flexray
