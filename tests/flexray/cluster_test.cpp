#include "flexray/cluster.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace coeff::flexray {
namespace {

using units::CycleIndex;
using units::MinislotId;
using units::SlotId;

/// Scripted policy for driving the cluster in tests.
class ScriptedPolicy : public TransmissionPolicy {
 public:
  std::function<std::optional<TxRequest>(ChannelId, CycleIndex, SlotId)>
      on_static;
  std::function<std::optional<TxRequest>(ChannelId, CycleIndex, SlotId,
                                         MinislotId, std::int64_t)>
      on_dynamic;

  std::vector<TxOutcome> outcomes;
  std::vector<std::int64_t> cycles_started;
  std::vector<std::int64_t> cycles_ended;
  std::vector<TxRequest> declined;

  void on_cycle_start(CycleIndex cycle, sim::Time) override {
    cycles_started.push_back(cycle.value());
  }
  std::optional<TxRequest> static_slot(ChannelId channel, CycleIndex cycle,
                                       SlotId slot) override {
    return on_static ? on_static(channel, cycle, slot) : std::nullopt;
  }
  std::optional<TxRequest> dynamic_slot(ChannelId channel, CycleIndex cycle,
                                        SlotId counter, MinislotId minislot,
                                        std::int64_t remaining) override {
    return on_dynamic ? on_dynamic(channel, cycle, counter, minislot, remaining)
                      : std::nullopt;
  }
  void on_tx_complete(const TxOutcome& outcome) override {
    outcomes.push_back(outcome);
  }
  void on_dynamic_declined(ChannelId, CycleIndex,
                           const TxRequest& request) override {
    declined.push_back(request);
  }
  void on_cycle_end(CycleIndex cycle, sim::Time) override {
    cycles_ended.push_back(cycle.value());
  }
};

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.g_macro_per_cycle = units::Macroticks{1000};
  cfg.g_number_of_static_slots = 4;
  cfg.gd_static_slot = units::Macroticks{40};
  cfg.g_number_of_minislots = 20;
  cfg.gd_minislot = units::Macroticks{8};
  cfg.num_nodes = 2;
  cfg.validate();
  return cfg;
}

TxRequest req(FrameId id, std::int64_t bits, std::uint64_t instance = 1) {
  TxRequest r;
  r.instance = instance;
  r.frame_id = id;
  r.sender = units::NodeId{0};
  r.payload_bits = bits;
  return r;
}

TEST(ClusterTest, RunsCycleLifecycle) {
  sim::Engine engine;
  ScriptedPolicy policy;
  Cluster cluster(engine, small_config(), policy, nullptr);
  cluster.run_cycles(3);
  EXPECT_EQ(policy.cycles_started, (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(policy.cycles_ended, (std::vector<std::int64_t>{0, 1, 2}));
  EXPECT_EQ(cluster.cycles_run(), 3);
  EXPECT_EQ(engine.now(), sim::millis(3));
}

TEST(ClusterTest, StaticSlotTransmissionTimesAndSegments) {
  sim::Engine engine;
  ScriptedPolicy policy;
  policy.on_static = [](ChannelId channel, CycleIndex,
                        SlotId slot) -> std::optional<TxRequest> {
    if (channel == ChannelId::kA && slot == SlotId{2}) {
      return req(FrameId{2}, 100);
    }
    return std::nullopt;
  };
  Cluster cluster(engine, small_config(), policy, nullptr);
  cluster.run_cycles(2);
  ASSERT_EQ(policy.outcomes.size(), 2u);
  EXPECT_EQ(policy.outcomes[0].start, sim::micros(40));  // slot 2 of cycle 0
  EXPECT_EQ(policy.outcomes[0].end, sim::micros(80));    // full slot duration
  EXPECT_EQ(policy.outcomes[0].segment, Segment::kStatic);
  EXPECT_EQ(policy.outcomes[1].start, sim::millis(1) + sim::micros(40));
  EXPECT_EQ(policy.outcomes[0].channel, ChannelId::kA);
}

TEST(ClusterTest, BothChannelsOfferedEachStaticSlot) {
  sim::Engine engine;
  ScriptedPolicy policy;
  int offers_a = 0, offers_b = 0;
  policy.on_static = [&](ChannelId channel, CycleIndex,
                         SlotId) -> std::optional<TxRequest> {
    (channel == ChannelId::kA ? offers_a : offers_b)++;
    return std::nullopt;
  };
  Cluster cluster(engine, small_config(), policy, nullptr);
  cluster.run_cycles(1);
  EXPECT_EQ(offers_a, 4);
  EXPECT_EQ(offers_b, 4);
}

TEST(ClusterTest, StaticFrameIdMustMatchSlot) {
  sim::Engine engine;
  ScriptedPolicy policy;
  policy.on_static = [](ChannelId, CycleIndex,
                        SlotId) -> std::optional<TxRequest> {
    // Wrong id for every slot except 7 (doesn't exist).
    return req(FrameId{7}, 100);
  };
  Cluster cluster(engine, small_config(), policy, nullptr);
  EXPECT_THROW(cluster.run_cycles(1), std::logic_error);
}

TEST(ClusterTest, StaticPayloadBeyondCapacityRejected) {
  sim::Engine engine;
  ScriptedPolicy policy;
  policy.on_static = [](ChannelId, CycleIndex,
                        SlotId slot) -> std::optional<TxRequest> {
    if (slot == SlotId{1}) return req(FrameId{1}, 1'000'000);
    return std::nullopt;
  };
  Cluster cluster(engine, small_config(), policy, nullptr);
  EXPECT_THROW(cluster.run_cycles(1), std::logic_error);
}

TEST(ClusterTest, DynamicSlotCountersStartAfterStaticSlots) {
  sim::Engine engine;
  ScriptedPolicy policy;
  std::vector<std::int64_t> counters;
  policy.on_dynamic = [&](ChannelId channel, CycleIndex, SlotId counter,
                          MinislotId,
                          std::int64_t) -> std::optional<TxRequest> {
    if (channel == ChannelId::kA) counters.push_back(counter.value());
    return std::nullopt;
  };
  Cluster cluster(engine, small_config(), policy, nullptr);
  cluster.run_cycles(1);
  // 20 empty minislots -> counters 5..24 on channel A.
  ASSERT_EQ(counters.size(), 20u);
  EXPECT_EQ(counters.front(), 5);
  EXPECT_EQ(counters.back(), 24);
}

TEST(ClusterTest, DynamicTransmissionConsumesMinislots) {
  sim::Engine engine;
  ScriptedPolicy policy;
  std::vector<std::int64_t> minislots;
  policy.on_dynamic = [&](ChannelId channel, CycleIndex, SlotId counter,
                          MinislotId minislot,
                          std::int64_t) -> std::optional<TxRequest> {
    if (channel != ChannelId::kA) return std::nullopt;
    minislots.push_back(minislot.value());
    if (counter == SlotId{5}) {
      // 10 Mb/s, 8 us minislot = 80 bits; 160 bits -> 2 + 1 idle = 3.
      return req(FrameId{5}, 160);
    }
    return std::nullopt;
  };
  Cluster cluster(engine, small_config(), policy, nullptr);
  cluster.run_cycles(1);
  // First slot consumed 3 minislots, so the second offer is at minislot 3.
  ASSERT_GE(minislots.size(), 2u);
  EXPECT_EQ(minislots[0], 0);
  EXPECT_EQ(minislots[1], 3);
}

TEST(ClusterTest, DynamicRespectsLatestTx) {
  auto cfg = small_config();
  cfg.p_latest_tx = MinislotId{5};
  sim::Engine engine;
  ScriptedPolicy policy;
  int granted = 0;
  policy.on_dynamic = [&](ChannelId channel, CycleIndex, SlotId, MinislotId,
                          std::int64_t) -> std::optional<TxRequest> {
    if (channel != ChannelId::kA) return std::nullopt;
    return req(FrameId{0}, 80);  // frame id irrelevant for dynamic
  };
  Cluster cluster(engine, cfg, policy, nullptr);
  cluster.run_cycles(1);
  granted = static_cast<int>(policy.outcomes.size());
  // Starts allowed only in minislots 0..4 -> with 2-minislot slots at
  // most 3 transmissions, and declines reported afterwards.
  EXPECT_LE(granted, 3);
  EXPECT_FALSE(policy.declined.empty());
}

TEST(ClusterTest, DynamicTooLargeForRemainderIsDeclined) {
  sim::Engine engine;
  ScriptedPolicy policy;
  policy.on_dynamic = [&](ChannelId channel, CycleIndex, SlotId, MinislotId,
                          std::int64_t) -> std::optional<TxRequest> {
    if (channel != ChannelId::kA) return std::nullopt;
    return req(FrameId{0}, 100'000);  // larger than the whole dynamic segment
  };
  Cluster cluster(engine, small_config(), policy, nullptr);
  cluster.run_cycles(1);
  EXPECT_TRUE(policy.outcomes.empty());
  EXPECT_EQ(policy.declined.size(), 20u);  // every minislot walks past it
}

TEST(ClusterTest, CorruptionHookControlsOutcomes) {
  sim::Engine engine;
  ScriptedPolicy policy;
  policy.on_static = [](ChannelId channel, CycleIndex,
                        SlotId slot) -> std::optional<TxRequest> {
    if (slot == SlotId{1} && channel == ChannelId::kA) {
      return req(FrameId{1}, 100);
    }
    return std::nullopt;
  };
  int verdicts = 0;
  auto corrupt_all = [&](const TxRequest&, ChannelId, sim::Time) {
    ++verdicts;
    return true;
  };
  Cluster cluster(engine, small_config(), policy, corrupt_all);
  cluster.run_cycles(2);
  EXPECT_EQ(verdicts, 2);
  for (const auto& out : policy.outcomes) EXPECT_TRUE(out.corrupted);
  EXPECT_EQ(cluster.channel(ChannelId::kA).stats().corrupted_frames, 2);
}

TEST(ClusterTest, ChannelStatsAccumulate) {
  sim::Engine engine;
  ScriptedPolicy policy;
  policy.on_static = [](ChannelId channel, CycleIndex,
                        SlotId slot) -> std::optional<TxRequest> {
    if (slot.value() <= 2 && channel == ChannelId::kA) {
      auto r = req(units::to_frame_id(slot), 100);
      r.retransmission = slot == SlotId{2};
      return r;
    }
    return std::nullopt;
  };
  Cluster cluster(engine, small_config(), policy, nullptr);
  cluster.run_cycles(5);
  const auto& stats = cluster.channel(ChannelId::kA).stats();
  EXPECT_EQ(stats.frames, 10);
  EXPECT_EQ(stats.retransmission_frames, 5);
  EXPECT_EQ(stats.payload_bits, 1000);
  EXPECT_EQ(stats.busy_static, sim::micros(40) * 10);
  EXPECT_EQ(cluster.channel(ChannelId::kB).stats().frames, 0);
}

TEST(ClusterTest, EngineEventsDeliveredAtSlotBoundaries) {
  sim::Engine engine;
  ScriptedPolicy policy;
  sim::Time fired_at;
  // Schedule an "arrival" mid-cycle; it must run before later slots ask
  // the policy for content.
  engine.schedule_at(sim::micros(50), [&] { fired_at = engine.now(); });
  Cluster cluster(engine, small_config(), policy, nullptr);
  cluster.run_cycles(1);
  EXPECT_EQ(fired_at, sim::micros(50));
}

TEST(ClusterTest, RunUntilCoversWholeCycles) {
  sim::Engine engine;
  ScriptedPolicy policy;
  Cluster cluster(engine, small_config(), policy, nullptr);
  cluster.run_until(sim::micros(1500));  // 1.5 cycles -> runs cycles 0 and 1
  EXPECT_EQ(cluster.cycles_run(), 2);
}

TEST(ClusterTest, ElapsedCapacityCounters) {
  sim::Engine engine;
  ScriptedPolicy policy;
  Cluster cluster(engine, small_config(), policy, nullptr);
  cluster.run_cycles(3);
  EXPECT_EQ(cluster.static_slots_elapsed(), 3 * 4 * 2);
  EXPECT_EQ(cluster.dynamic_minislots_elapsed(), 3 * 20 * 2);
}

}  // namespace
}  // namespace coeff::flexray
