#include "flexray/bus.hpp"

#include <gtest/gtest.h>

namespace coeff::flexray {
namespace {

TxRequest req(std::int64_t bits, bool retx = false) {
  TxRequest r;
  r.instance = 42;
  r.frame_id = FrameId{7};
  r.sender = units::NodeId{1};
  r.payload_bits = bits;
  r.retransmission = retx;
  return r;
}

TEST(ChannelTest, OutcomeEchoesRequest) {
  Channel ch(ChannelId::kA, nullptr);
  const auto out =
      ch.transmit(req(100), sim::micros(10), sim::micros(4),
                  units::CycleIndex{2}, units::SlotId{3}, Segment::kStatic);
  EXPECT_EQ(out.request.instance, 42u);
  EXPECT_EQ(out.channel, ChannelId::kA);
  EXPECT_EQ(out.start, sim::micros(10));
  EXPECT_EQ(out.end, sim::micros(14));
  EXPECT_EQ(out.cycle, units::CycleIndex{2});
  EXPECT_EQ(out.slot, units::SlotId{3});
  EXPECT_EQ(out.segment, Segment::kStatic);
  EXPECT_FALSE(out.corrupted);
}

TEST(ChannelTest, NullCorruptionMeansClean) {
  Channel ch(ChannelId::kB, nullptr);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(ch.transmit(req(100), sim::micros(i), sim::micros(1),
                             units::CycleIndex{0}, units::SlotId{1},
                             Segment::kDynamic)
                     .corrupted);
  }
  EXPECT_EQ(ch.stats().corrupted_frames, 0);
}

TEST(ChannelTest, CorruptionFnConsulted) {
  int calls = 0;
  Channel ch(ChannelId::kA, [&](const TxRequest& r, ChannelId id, sim::Time) {
    ++calls;
    EXPECT_EQ(id, ChannelId::kA);
    return r.payload_bits > 50;
  });
  EXPECT_FALSE(ch.transmit(req(10), {}, sim::micros(1), units::CycleIndex{0},
                           units::SlotId{1}, Segment::kStatic)
                   .corrupted);
  EXPECT_TRUE(ch.transmit(req(100), {}, sim::micros(1), units::CycleIndex{0},
                          units::SlotId{1}, Segment::kStatic)
                  .corrupted);
  EXPECT_EQ(calls, 2);
}

TEST(ChannelTest, StatsSeparateSegments) {
  Channel ch(ChannelId::kA, nullptr);
  ch.transmit(req(100), {}, sim::micros(40), units::CycleIndex{0},
              units::SlotId{1}, Segment::kStatic);
  ch.transmit(req(50), {}, sim::micros(10), units::CycleIndex{0},
              units::SlotId{5}, Segment::kDynamic);
  EXPECT_EQ(ch.stats().busy_static, sim::micros(40));
  EXPECT_EQ(ch.stats().busy_dynamic, sim::micros(10));
  EXPECT_EQ(ch.stats().frames, 2);
  EXPECT_EQ(ch.stats().payload_bits, 150);
}

TEST(ChannelTest, RetransmissionCounter) {
  Channel ch(ChannelId::kA, nullptr);
  ch.transmit(req(10, true), {}, sim::micros(1), units::CycleIndex{0},
              units::SlotId{1}, Segment::kStatic);
  ch.transmit(req(10, false), {}, sim::micros(1), units::CycleIndex{0},
              units::SlotId{2}, Segment::kStatic);
  EXPECT_EQ(ch.stats().retransmission_frames, 1);
}

TEST(ChannelTest, MinislotAccounting) {
  Channel ch(ChannelId::kB, nullptr);
  ch.account_minislots(3);
  ch.account_minislots(2);
  EXPECT_EQ(ch.stats().minislots_used, 5);
}

TEST(ChannelTest, ResetStats) {
  Channel ch(ChannelId::kA, nullptr);
  ch.transmit(req(10), {}, sim::micros(1), units::CycleIndex{0},
              units::SlotId{1}, Segment::kStatic);
  ch.reset_stats();
  EXPECT_EQ(ch.stats().frames, 0);
  EXPECT_EQ(ch.stats().busy_static, sim::Time::zero());
}

}  // namespace
}  // namespace coeff::flexray
