// Numeric edge cases of the convolution core (DESIGN.md §14): the
// degenerate zero-BER channel, p -> 1 saturation, truncation /
// renormalization error bounds, and quantization-step invariance of the
// upper-bound guarantee.
#include "analysis/pmf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fault/fault_model.hpp"

namespace coeff::analysis {
namespace {

constexpr double kTol = 1e-12;

Pmf bernoulli(double p, sim::Time work, sim::Time quantum,
              std::size_t bins) {
  Pmf pmf(quantum, bins);
  pmf.add_mass(sim::Time::zero(), 1.0 - p);
  pmf.add_mass(work, p);
  return pmf;
}

TEST(PmfEdge, ZeroBerChannelIsDegenerateAtZero) {
  fault::FaultModelConfig config;
  config.kind = fault::FaultModelKind::kIid;
  config.ber = 0.0;
  fault::AnalyticFailure af(config);
  EXPECT_EQ(af.attempt(1000), 0.0);
  EXPECT_EQ(af.consecutive_failures(1000, 4), 0.0);
  EXPECT_EQ(af.independent_failures(1000, 4), 0.0);

  // The interference convolution collapses to a point mass at zero.
  Pmf acc(sim::micros(50), 64);
  acc.add_mass(sim::Time::zero(), 1.0);
  for (int i = 0; i < 10; ++i) {
    acc = acc.convolve(
        bernoulli(af.attempt(1000), sim::micros(50), sim::micros(50), 64));
  }
  EXPECT_NEAR(acc.total_mass(), 1.0, kTol);
  EXPECT_NEAR(acc.tail_above(sim::Time::zero()), 0.0, kTol);
  EXPECT_EQ(acc.quantile(0.999), sim::Time::zero());
}

TEST(PmfEdge, SaturatedChannelPushesAllMassToFailure) {
  // A frame so large at so high a BER that every attempt fails.
  fault::FaultModelConfig config;
  config.kind = fault::FaultModelKind::kIid;
  config.ber = 0.5;
  fault::AnalyticFailure af(config);
  const double p = af.attempt(1 << 20);
  EXPECT_GT(p, 1.0 - 1e-12);
  EXPECT_NEAR(af.consecutive_failures(1 << 20, 3), 1.0, 1e-9);

  // Response construction mirror: no attempt ever succeeds, so the
  // whole unit mass ends in the overflow ("never lands") bucket and the
  // deadline-miss tail saturates at 1 for every deadline.
  Pmf response(sim::micros(50), 64);
  double f_prev = 1.0;
  for (int i = 0; i < 3; ++i) {
    const double f_next = af.consecutive_failures(1 << 20, i + 1);
    response.add_mass(sim::millis(1) * (i + 1),
                      std::max(0.0, f_prev - f_next));
    f_prev = f_next;
  }
  response.add_overflow(f_prev);
  EXPECT_NEAR(response.total_mass(), 1.0, kTol);
  EXPECT_NEAR(response.tail_above(sim::seconds(3600)), 1.0, 1e-9);
  EXPECT_EQ(response.quantile(0.999), sim::Time::max());
}

TEST(PmfEdge, TruncationMovesMassToOverflowNeverDropsIt) {
  // 4 bins of 50us cover delays up to 150us; everything later must be
  // absorbed by the overflow bucket, not silently dropped.
  Pmf tiny(sim::micros(50), 4);
  tiny.add_mass(sim::micros(100), 0.25);
  tiny.add_mass(sim::micros(150), 0.25);
  tiny.add_mass(sim::micros(200), 0.25);  // beyond the grid
  tiny.add_mass(sim::seconds(10), 0.25);  // far beyond the grid
  EXPECT_NEAR(tiny.total_mass(), 1.0, kTol);
  EXPECT_NEAR(tiny.overflow(), 0.5, kTol);
  // The overflow bucket counts toward every tail: the bound stays an
  // upper bound no matter how coarse the grid.
  EXPECT_NEAR(tiny.tail_above(sim::micros(150)), 0.5, kTol);
  EXPECT_NEAR(tiny.tail_above(sim::micros(100)), 0.75, kTol);
  EXPECT_NEAR(tiny.tail_above(sim::micros(50)), 1.0, kTol);
}

TEST(PmfEdge, RepeatedConvolutionConservesMassWithinFloatTolerance) {
  Pmf acc(sim::micros(50), 32);  // deliberately narrow: forces overflow
  acc.add_mass(sim::Time::zero(), 1.0);
  for (int i = 0; i < 200; ++i) {
    acc = acc.convolve(
        bernoulli(0.3, sim::micros(150), sim::micros(50), 32));
  }
  // 200 convolutions drift the total by at most ~200 ulps-scale error.
  EXPECT_NEAR(acc.total_mass(), 1.0, 1e-9);
  EXPECT_GT(acc.overflow(), 0.9);  // mean 200*45us blew past the grid

  const double factor = acc.normalize();
  EXPECT_NEAR(acc.total_mass(), 1.0, kTol);
  EXPECT_NEAR(factor, 1.0, 1e-9);
}

TEST(PmfEdge, CoarserQuantumOnlyRaisesTheTailBound) {
  // Quantization rounds up, so refining the step can only tighten (never
  // invalidate) a deadline-miss bound: tail_coarse >= tail_fine >= exact.
  const sim::Time deadline = sim::micros(180);
  const auto build = [](sim::Time quantum) {
    Pmf pmf(quantum, 4096);
    pmf.add_mass(sim::micros(33), 0.5);    // lands before D either way
    pmf.add_mass(sim::micros(170), 0.3);   // rounds past D only at 50us
    pmf.add_mass(sim::micros(400), 0.2);   // past D either way
    return pmf;
  };
  const double coarse = build(sim::micros(50)).tail_above(deadline);
  const double fine = build(sim::micros(10)).tail_above(deadline);
  const double exact = 0.2;
  EXPECT_GE(coarse, fine - kTol);
  EXPECT_GE(fine, exact - kTol);
  EXPECT_NEAR(coarse, 0.5, kTol);  // 170 -> bin 200 > 180
  EXPECT_NEAR(fine, 0.2, kTol);    // 170 -> bin 170 <= 180
}

TEST(PmfEdge, QuantumInvarianceOfDegenerateAndSaturatedMasses) {
  // Grid-aligned point masses are step-invariant: the same distribution
  // quantized at 10us and 50us answers every grid-aligned query alike.
  for (const sim::Time q : {sim::micros(10), sim::micros(50)}) {
    Pmf pmf(q, 4096);
    pmf.add_mass(sim::Time::zero(), 0.25);
    pmf.add_mass(sim::micros(100), 0.5);
    pmf.add_mass(sim::micros(600), 0.25);
    EXPECT_NEAR(pmf.tail_above(sim::micros(100)), 0.25, kTol);
    EXPECT_NEAR(pmf.tail_above(sim::Time::zero()), 0.75, kTol);
    EXPECT_EQ(pmf.quantile(0.75), sim::micros(100));
  }
}

TEST(PmfEdge, ConvolveAndAccumulateRejectQuantumMismatch) {
  Pmf a(sim::micros(50), 8);
  Pmf b(sim::micros(10), 8);
  a.add_mass(sim::Time::zero(), 1.0);
  b.add_mass(sim::Time::zero(), 1.0);
  EXPECT_THROW((void)a.convolve(b), std::invalid_argument);
  EXPECT_THROW(a.accumulate(b, 0.5), std::invalid_argument);
}

// --- with_cycle_slips (DESIGN.md §15: geometric cycle-slip operator) ---

Pmf unit_at(sim::Time t, sim::Time quantum, std::size_t bins) {
  Pmf pmf(quantum, bins);
  pmf.add_mass(t, 1.0);
  return pmf;
}

TEST(CycleSlips, ZeroSlipProbabilityIsIdentityPlusNothing) {
  const Pmf first = unit_at(sim::micros(100), sim::micros(50), 64);
  const Pmf out = with_cycle_slips(first, 0.0, sim::millis(1), 8);
  EXPECT_NEAR(out.total_mass(), 1.0, kTol);
  EXPECT_NEAR(out.overflow(), 0.0, kTol);
  EXPECT_NEAR(out.tail_above(sim::micros(100)), 0.0, kTol);
  EXPECT_NEAR(out.tail_above(sim::micros(50)), 1.0, kTol);
  EXPECT_EQ(out.quantile(0.999), sim::micros(100));
}

TEST(CycleSlips, CertainSlipSendsAllMassToOverflow) {
  // p_slip = 1: no term of the geometric series ever lands, so the whole
  // unit mass must be conserved in the overflow bucket (certain miss),
  // never silently dropped.
  const Pmf first = unit_at(sim::micros(100), sim::micros(50), 64);
  const Pmf out = with_cycle_slips(first, 1.0, sim::millis(1), 16);
  EXPECT_NEAR(out.total_mass(), 1.0, kTol);
  EXPECT_NEAR(out.overflow(), 1.0, kTol);
  EXPECT_EQ(out.quantile(0.999), sim::Time::max());
}

TEST(CycleSlips, GeometricWeightsConserveMassAndMatchClosedForm) {
  const double p = 0.25;
  const sim::Time cycle = sim::millis(1);
  const Pmf first = unit_at(sim::micros(100), sim::micros(50), 4096);
  const Pmf out = with_cycle_slips(first, p, cycle, 32);
  EXPECT_NEAR(out.total_mass(), 1.0, 1e-9);
  // P(response > j cycles + first) = p^(j+1): the tail just above the
  // j-th landing point is exactly the not-yet-served geometric tail.
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(out.tail_above(cycle * j + sim::micros(100)),
                std::pow(p, j + 1), 1e-12)
        << "after slip " << j;
  }
}

TEST(CycleSlips, TruncationResidualLandsInOverflowAtTheSlipCap) {
  // max_slips = 2 keeps terms j=0..2; the residual p^3 must be overflow
  // so every deadline-miss tail stays an upper bound after truncation.
  const double p = 0.5;
  const Pmf first = unit_at(sim::micros(100), sim::micros(50), 4096);
  const Pmf out = with_cycle_slips(first, p, sim::millis(1), 2);
  EXPECT_NEAR(out.total_mass(), 1.0, kTol);
  EXPECT_NEAR(out.overflow(), 0.125, kTol);
  EXPECT_NEAR(out.tail_above(sim::seconds(1)), 0.125, kTol);
}

TEST(CycleSlips, GridExhaustionAtTheCutoffStillConserves) {
  // The shifted copies march off a deliberately tiny grid: shifted()
  // moves the late mass into overflow, and the operator's own residual
  // joins it — total mass stays 1 whatever the cap.
  const Pmf first = unit_at(sim::micros(100), sim::micros(50), 8);
  const Pmf out = with_cycle_slips(first, 0.5, sim::millis(5), 64);
  EXPECT_NEAR(out.total_mass(), 1.0, 1e-9);
  EXPECT_NEAR(out.overflow(), 0.5, 1e-9);  // every slipped term overflows
  EXPECT_NEAR(out.tail_above(sim::micros(100)), 0.5, 1e-9);
}

TEST(CycleSlips, RejectsMalformedParameters) {
  const Pmf first = unit_at(sim::micros(100), sim::micros(50), 8);
  EXPECT_THROW((void)with_cycle_slips(first, -0.1, sim::millis(1), 4),
               std::invalid_argument);
  EXPECT_THROW((void)with_cycle_slips(first, 1.1, sim::millis(1), 4),
               std::invalid_argument);
  EXPECT_THROW((void)with_cycle_slips(first, std::nan(""), sim::millis(1), 4),
               std::invalid_argument);
  EXPECT_THROW((void)with_cycle_slips(first, 0.5, sim::millis(1), -1),
               std::invalid_argument);
  EXPECT_THROW((void)with_cycle_slips(first, 0.5, sim::millis(-1), 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace coeff::analysis
