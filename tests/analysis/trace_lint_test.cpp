// Seeded-violation fixtures for every TraceLint rule on hand-built
// traces, plus a clean test over a genuinely recorded experiment run.
#include "analysis/trace_lint.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "net/workloads.hpp"
#include "sim/trace.hpp"

namespace coeff::analysis {
namespace {

using sim::TraceKind;

/// Hand-built traces on the paper's application cluster: 1 ms cycle,
/// 15 static slots of 50 us, 25 minislots of 8 us.
struct Fixture {
  flexray::ClusterConfig cluster = core::paper_cluster_apps(25);
  sim::Trace trace;

  Report lint(RetxDiscipline discipline = RetxDiscipline::kPlanned,
              bool initial_degraded = false) const {
    TraceLintInput input;
    input.trace = &trace;
    input.cluster = &cluster;
    input.discipline = discipline;
    input.initial_degraded = initial_degraded;
    return lint_trace(input);
  }
};

TEST(TraceLintTest, RecordedExperimentTraceIsClean) {
  core::ExperimentConfig config;
  config.cluster = core::paper_cluster_apps(25);
  config.statics = net::brake_by_wire();
  config.batch_window = sim::millis(100);
  sim::Trace trace;
  config.trace = &trace;
  (void)core::run_experiment(config, core::SchemeKind::kCoEfficient);
  ASSERT_FALSE(trace.records().empty());

  TraceLintInput input;
  input.trace = &trace;
  input.cluster = &config.cluster;
  input.discipline = RetxDiscipline::kPlanned;
  const Report report = lint_trace(input);
  EXPECT_FALSE(report.has_errors()) << report.render_text();
}

TEST(TraceLintTest, MissingTraceIsAnError) {
  EXPECT_TRUE(lint_trace(TraceLintInput{}).has_rule("trace.kind-valid"));
}

TEST(TraceLintTest, KindValid) {
  Fixture f;
  f.trace.emit(sim::micros(1), static_cast<TraceKind>(200));
  EXPECT_TRUE(f.lint().has_rule("trace.kind-valid"));
}

TEST(TraceLintTest, KindValidRejectsBogusChannel) {
  Fixture f;
  f.trace.emit(sim::micros(1), TraceKind::kTxSuccess, 0, 1, /*channel=*/7, 64);
  EXPECT_TRUE(f.lint().has_rule("trace.kind-valid"));
}

TEST(TraceLintTest, MonotonicTime) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kCycleStart, 1);
  f.trace.emit(sim::millis(1), TraceKind::kCycleStart, 1);  // does not advance
  EXPECT_TRUE(f.lint().has_rule("trace.monotonic-time"));
}

TEST(TraceLintTest, CycleBoundary) {
  Fixture f;
  f.trace.emit(sim::micros(1500), TraceKind::kCycleStart, 1);  // off the grid
  EXPECT_TRUE(f.lint().has_rule("trace.cycle-boundary"));
}

TEST(TraceLintTest, CycleBoundaryChecksCycleNumber) {
  Fixture f;
  // On the grid, but claiming the wrong cycle index.
  f.trace.emit(sim::millis(2), TraceKind::kCycleStart, 5);
  EXPECT_TRUE(f.lint().has_rule("trace.cycle-boundary"));
}

TEST(TraceLintTest, TxOverlap) {
  Fixture f;
  // Two static-segment frames on channel A, 10 us apart inside one
  // 50 us slot.
  f.trace.emit(sim::micros(0), TraceKind::kTxSuccess, 0, 1, 0, 64);
  f.trace.emit(sim::micros(10), TraceKind::kTxSuccess, 1, 2, 0, 64);
  EXPECT_TRUE(f.lint().has_rule("trace.tx-overlap"));
}

TEST(TraceLintTest, SeparateChannelsDoNotOverlap) {
  Fixture f;
  f.trace.emit(sim::micros(0), TraceKind::kTxSuccess, 0, 1, 0, 64);
  f.trace.emit(sim::micros(10), TraceKind::kTxSuccess, 1, 2, 1, 64);
  EXPECT_FALSE(f.lint().has_rule("trace.tx-overlap"));
}

TEST(TraceLintTest, BackToBackSlotsDoNotOverlap) {
  Fixture f;
  f.trace.emit(sim::micros(0), TraceKind::kTxSuccess, 0, 1, 0, 64);
  f.trace.emit(sim::micros(50), TraceKind::kTxSuccess, 1, 2, 0, 64);
  EXPECT_FALSE(f.lint().has_rule("trace.tx-overlap"));
}

TEST(TraceLintTest, RetxPlannedRequiresBudget) {
  Fixture f;
  f.trace.emit(sim::micros(0), TraceKind::kTxSuccess, /*node=*/3, 1, 0, 64,
               "retx");
  EXPECT_TRUE(
      f.lint(RetxDiscipline::kPlanned).has_rule("trace.retx-causality"));
}

TEST(TraceLintTest, RetxPlannedHonoursScheduledBudget) {
  Fixture f;
  // a=message, b=node, c=admitted copies.
  f.trace.emit(sim::micros(0), TraceKind::kRetransmissionScheduled, 1, 3, 1);
  f.trace.emit(sim::micros(50), TraceKind::kTxSuccess, /*node=*/3, 1, 0, 64,
               "retx");
  EXPECT_FALSE(
      f.lint(RetxDiscipline::kPlanned).has_rule("trace.retx-causality"));
}

TEST(TraceLintTest, RetxPlannedFlagsExcessCopies) {
  Fixture f;
  f.trace.emit(sim::micros(0), TraceKind::kRetransmissionScheduled, 1, 3, 1);
  f.trace.emit(sim::micros(50), TraceKind::kTxSuccess, 3, 1, 0, 64, "retx");
  f.trace.emit(sim::micros(100), TraceKind::kTxSuccess, 3, 1, 0, 64, "retx");
  const Report report = f.lint(RetxDiscipline::kPlanned);
  EXPECT_EQ(report.count_rule("trace.retx-causality"), 1u);
}

TEST(TraceLintTest, RetxRoundsMustRepeatAnOriginal) {
  Fixture f;
  f.trace.emit(sim::micros(0), TraceKind::kTxSuccess, 3, 1, 0, 64, "retx");
  EXPECT_TRUE(
      f.lint(RetxDiscipline::kRounds).has_rule("trace.retx-causality"));
}

TEST(TraceLintTest, RetxRoundsAcceptsRepeatOfEarlierFrame) {
  Fixture f;
  // The round-1 original (even a corrupted one) justifies later rounds.
  f.trace.emit(sim::micros(0), TraceKind::kTxCorrupted, 3, 1, 0, 64);
  f.trace.emit(sim::micros(50), TraceKind::kTxSuccess, 3, 1, 0, 64, "retx");
  EXPECT_FALSE(
      f.lint(RetxDiscipline::kRounds).has_rule("trace.retx-causality"));
}

TEST(TraceLintTest, RetxMirroredBelongsOnChannelB) {
  Fixture f;
  f.trace.emit(sim::micros(0), TraceKind::kTxSuccess, 3, 1, /*channel=*/0, 64,
               "retx");
  EXPECT_TRUE(
      f.lint(RetxDiscipline::kMirrored).has_rule("trace.retx-causality"));
}

TEST(TraceLintTest, RetxMirroredAcceptsChannelB) {
  Fixture f;
  f.trace.emit(sim::micros(0), TraceKind::kTxSuccess, 3, 1, /*channel=*/1, 64,
               "retx");
  EXPECT_FALSE(
      f.lint(RetxDiscipline::kMirrored).has_rule("trace.retx-causality"));
}

TEST(TraceLintTest, PlanSwapBoundary) {
  Fixture f;
  f.trace.emit(sim::micros(500), TraceKind::kPlanSwap, 0, 4, 0);
  EXPECT_TRUE(f.lint().has_rule("trace.plan-swap-boundary"));
}

TEST(TraceLintTest, PlanSwapOnBoundaryIsClean) {
  Fixture f;
  f.trace.emit(sim::millis(2), TraceKind::kPlanSwap, 2, 4, 0);
  EXPECT_FALSE(f.lint().has_rule("trace.plan-swap-boundary"));
}

TEST(TraceLintTest, LoadShedRequiresDegradedMode) {
  Fixture f;
  f.trace.emit(sim::micros(100), TraceKind::kLoadShed, 7, 2);
  EXPECT_TRUE(f.lint().has_rule("trace.load-shed-degraded"));
}

TEST(TraceLintTest, LoadShedLegalAfterDegradedSwap) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kPlanSwap, 1, 4, /*degraded=*/1);
  f.trace.emit(sim::micros(1100), TraceKind::kLoadShed, 7, 2);
  EXPECT_FALSE(f.lint().has_rule("trace.load-shed-degraded"));
}

TEST(TraceLintTest, LoadShedLegalWhenInitiallyDegraded) {
  Fixture f;
  f.trace.emit(sim::micros(100), TraceKind::kLoadShed, 7, 2);
  EXPECT_FALSE(f.lint(RetxDiscipline::kPlanned, /*initial_degraded=*/true)
                   .has_rule("trace.load-shed-degraded"));
}

TEST(TraceLintTest, StructuralTransitionOffGridIsFlagged) {
  Fixture f;
  f.trace.emit(sim::micros(500), TraceKind::kNodeCrash, 1);  // mid-cycle
  EXPECT_TRUE(f.lint().has_rule("trace.structural-boundary"));
}

TEST(TraceLintTest, StructuralTransitionChecksCycleTag) {
  Fixture f;
  // On the grid, but the recorded cycle tag disagrees with the time.
  f.trace.emit(sim::millis(2), TraceKind::kNodeCrash, 1, /*cycle=*/5);
  EXPECT_TRUE(f.lint().has_rule("trace.structural-boundary"));
}

TEST(TraceLintTest, AlignedStructuralTransitionIsClean) {
  Fixture f;
  f.trace.emit(sim::millis(2), TraceKind::kNodeCrash, 1, /*cycle=*/2);
  f.trace.emit(sim::millis(4), TraceKind::kNodeRestart, 1, /*cycle=*/4);
  const Report report = f.lint();
  EXPECT_FALSE(report.has_rule("trace.structural-boundary"));
  EXPECT_FALSE(report.has_rule("trace.structural-causality"));
}

TEST(TraceLintTest, DoubleCrashIsACausalityViolation) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kNodeCrash, 1, 1);
  f.trace.emit(sim::millis(2), TraceKind::kNodeCrash, 1, 2);
  EXPECT_TRUE(f.lint().has_rule("trace.structural-causality"));
}

TEST(TraceLintTest, RestartWithoutCrashIsACausalityViolation) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kNodeRestart, 1, 1);
  EXPECT_TRUE(f.lint().has_rule("trace.structural-causality"));
}

TEST(TraceLintTest, ChannelDownTwiceIsACausalityViolation) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kChannelDown, 0, 1);
  f.trace.emit(sim::millis(2), TraceKind::kChannelDown, 0, 2);
  EXPECT_TRUE(f.lint().has_rule("trace.structural-causality"));
}

TEST(TraceLintTest, ChannelUpWithoutDownIsACausalityViolation) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kChannelUp, 1, 1);
  EXPECT_TRUE(f.lint().has_rule("trace.structural-causality"));
}

TEST(TraceLintTest, ChannelEventTagMustBeAChannel) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kChannelDown, /*channel=*/7, 1);
  EXPECT_TRUE(f.lint().has_rule("trace.kind-valid"));
}

TEST(TraceLintTest, FailoverRequiresDarkHomeChannel) {
  Fixture f;
  // a=sender, b=slot, c=carrying channel, d=bits.
  f.trace.emit(sim::micros(100), TraceKind::kFailover, 0, 2, 1, 64);
  EXPECT_TRUE(f.lint().has_rule("trace.failover-causality"));
}

TEST(TraceLintTest, FailoverMustRideALiveWire) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kChannelDown, 0, 1);
  f.trace.emit(sim::millis(2), TraceKind::kChannelDown, 1, 2);
  f.trace.emit(sim::millis(2) + sim::micros(100), TraceKind::kFailover, 0, 2,
               /*channel=*/1, 64);
  EXPECT_TRUE(f.lint().has_rule("trace.failover-causality"));
}

TEST(TraceLintTest, FailoverDuringBlackoutIsClean) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kChannelDown, 0, 1);
  f.trace.emit(sim::millis(1) + sim::micros(100), TraceKind::kTxSuccess, 0, 1,
               /*channel=*/1, 64);
  f.trace.emit(sim::millis(1) + sim::micros(100), TraceKind::kFailover, 0, 2,
               /*channel=*/1, 64);
  EXPECT_FALSE(f.lint().has_rule("trace.failover-causality"));
}

TEST(TraceLintTest, TransmissionOnDarkChannelIsFlagged) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kChannelDown, 0, 1);
  f.trace.emit(sim::millis(1) + sim::micros(100), TraceKind::kTxSuccess, 0, 1,
               /*channel=*/0, 64);
  EXPECT_TRUE(f.lint().has_rule("trace.dead-channel-tx"));
}

TEST(TraceLintTest, TransmissionAfterChannelRecoveryIsClean) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kChannelDown, 0, 1);
  f.trace.emit(sim::millis(2), TraceKind::kChannelUp, 0, 2);
  f.trace.emit(sim::millis(2) + sim::micros(100), TraceKind::kTxSuccess, 0, 1,
               /*channel=*/0, 64);
  EXPECT_FALSE(f.lint().has_rule("trace.dead-channel-tx"));
}

TEST(TraceLintTest, VoteSizeMustBeOddAndAtLeastThree) {
  Fixture f;
  // a=message, b=accepted, c=clean, d=k.
  f.trace.emit(sim::micros(100), TraceKind::kVoteResolved, 1, 1, 2, 2);
  f.trace.emit(sim::micros(200), TraceKind::kVoteResolved, 1, 1, 1, 1);
  EXPECT_EQ(f.lint().count_rule("trace.vote-consistency"), 2u);
}

TEST(TraceLintTest, VoteVerdictMustMatchCleanMajority) {
  Fixture f;
  // Accepted with 1 of 3 clean replicas: majority is 2.
  f.trace.emit(sim::micros(100), TraceKind::kVoteResolved, 1, 1, 1, 3);
  EXPECT_TRUE(f.lint().has_rule("trace.vote-consistency"));
}

TEST(TraceLintTest, ConsistentVotesAreClean) {
  Fixture f;
  f.trace.emit(sim::micros(100), TraceKind::kVoteResolved, 1, 1, 2, 3);
  f.trace.emit(sim::micros(200), TraceKind::kVoteResolved, 2, 0, 1, 3);
  EXPECT_FALSE(f.lint().has_rule("trace.vote-consistency"));
}

// --- engine.template-invalidation --------------------------------------

TEST(TraceLintTest, StaleTemplateTransmissionIsFlagged) {
  Fixture f;
  // A rebuild marker arms the rule; a later plan swap is then followed
  // by a transmission with no second rebuild — the stale-template bug.
  f.trace.emit(sim::Time::zero(), TraceKind::kTemplateRebuild, 0, 1, 0);
  f.trace.emit(sim::millis(1), TraceKind::kPlanSwap, 1, 4, 0);
  f.trace.emit(sim::millis(1), TraceKind::kTxSuccess, 0, 1, 0, 64);
  EXPECT_TRUE(f.lint().has_rule("engine.template-invalidation"));
}

TEST(TraceLintTest, MembershipEventWithoutRebuildIsFlagged) {
  Fixture f;
  f.trace.emit(sim::Time::zero(), TraceKind::kTemplateRebuild, 0, 1, 0);
  f.trace.emit(sim::millis(1), TraceKind::kNodeCrash, 2, 1);
  f.trace.emit(sim::millis(1) + sim::micros(50), TraceKind::kTxSuccess, 0, 2,
               0, 64);
  EXPECT_TRUE(f.lint().has_rule("engine.template-invalidation"));
}

TEST(TraceLintTest, RebuildBeforeNextTxIsClean) {
  Fixture f;
  f.trace.emit(sim::Time::zero(), TraceKind::kTemplateRebuild, 0, 1, 0);
  f.trace.emit(sim::millis(1), TraceKind::kPlanSwap, 1, 4, 0);
  f.trace.emit(sim::millis(1), TraceKind::kTemplateRebuild, 1, 2, 1);
  f.trace.emit(sim::millis(1), TraceKind::kTxSuccess, 0, 1, 0, 64);
  f.trace.emit(sim::millis(2), TraceKind::kChannelDown, 0, 2);
  f.trace.emit(sim::millis(2), TraceKind::kTemplateRebuild, 2, 3, 3);
  f.trace.emit(sim::millis(2), TraceKind::kTxSuccess, 0, 1, 1, 64);
  EXPECT_FALSE(f.lint().has_rule("engine.template-invalidation"));
}

TEST(TraceLintTest, TracesWithoutRebuildMarkersAreExempt) {
  Fixture f;
  // Pre-template trace (or an interpreted-only policy): plan swap then
  // tx, no markers anywhere — the rule must stay silent.
  f.trace.emit(sim::millis(1), TraceKind::kPlanSwap, 1, 4, 0);
  f.trace.emit(sim::millis(1), TraceKind::kTxSuccess, 0, 1, 0, 64);
  EXPECT_FALSE(f.lint().has_rule("engine.template-invalidation"));
}

TEST(TraceLintTest, RecordedStructuralRunPassesTemplateInvalidation) {
  // A real run with crashes, blackouts and a monitor re-plan: the
  // scheduler's own rebuild discipline must satisfy the rule.
  core::ExperimentConfig config;
  config.cluster = core::paper_cluster_apps(25);
  config.statics = net::brake_by_wire();
  config.batch_window = sim::millis(100);
  config.structural.blackouts.push_back(
      {flexray::ChannelId::kA, sim::millis(5), sim::millis(20)});
  config.structural.crashes.push_back(
      {units::NodeId{1}, sim::millis(10), sim::millis(30)});
  sim::Trace trace;
  config.trace = &trace;
  (void)core::run_experiment(config, core::SchemeKind::kCoEfficient);
  ASSERT_GT(trace.count(TraceKind::kTemplateRebuild), 0u);

  TraceLintInput input;
  input.trace = &trace;
  input.cluster = &config.cluster;
  const Report report = lint_trace(input);
  EXPECT_FALSE(report.has_rule("engine.template-invalidation"))
      << report.render_text();
}

TEST(TraceLintTest, ModeChangeOffBoundaryIsFlagged) {
  Fixture f;
  // a=from, b=to, c=cycle: half a millisecond into the 1 ms cycle grid.
  f.trace.emit(sim::micros(500), TraceKind::kModeChange, 0, 1, 0, 10);
  EXPECT_TRUE(f.lint().has_rule("trace.mode-change-boundary"));
}

TEST(TraceLintTest, ModeChangeWrongCycleTagIsFlagged) {
  Fixture f;
  // Aligned timestamp, but the recorded cycle tag says cycle 5.
  f.trace.emit(sim::millis(2), TraceKind::kModeChange, 0, 1, 5, 10);
  EXPECT_TRUE(f.lint().has_rule("trace.mode-change-boundary"));
}

TEST(TraceLintTest, ModeChangeSelfLoopIsKindInvalid) {
  Fixture f;
  // from == to is not a transition; out-of-range tags ride the same
  // check.
  f.trace.emit(sim::millis(1), TraceKind::kModeChange, 1, 1, 1, 10);
  EXPECT_TRUE(f.lint().has_rule("trace.kind-valid"));
  Fixture g;
  g.trace.emit(sim::millis(1), TraceKind::kModeChange, 0, 3, 1, 10);
  EXPECT_TRUE(g.lint().has_rule("trace.kind-valid"));
}

TEST(TraceLintTest, ShedOutsideDegradedIsFlagged) {
  Fixture f;
  // No kModeChange before it: the replayed mode is still NORMAL.
  f.trace.emit(sim::millis(1), TraceKind::kShedByMode, 1001, 0, 1, 0);
  EXPECT_TRUE(f.lint().has_rule("trace.shed-outside-degraded"));
}

TEST(TraceLintTest, ShedModeTagMustMatchReplayedMode) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kModeChange, 0, 1, 1, 10);
  // Shed claims mode 2 while the replay says DEGRADED-L1.
  f.trace.emit(sim::millis(1) + sim::micros(100), TraceKind::kShedByMode,
               1001, 0, 2, 0);
  EXPECT_TRUE(f.lint().has_rule("trace.shed-outside-degraded"));
}

TEST(TraceLintTest, ShedInDegradedModeIsClean) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kModeChange, 0, 1, 1, 10);
  f.trace.emit(sim::millis(1) + sim::micros(100), TraceKind::kShedByMode,
               1001, 0, 1, 0);
  EXPECT_FALSE(f.lint().has_rule("trace.shed-outside-degraded"));
}

TEST(TraceLintTest, MatchupWhileDegradedIsFlagged) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kModeChange, 0, 1, 1, 10);
  f.trace.emit(sim::millis(2), TraceKind::kMatchUp, 1001, 0, 2, 0);
  EXPECT_TRUE(f.lint().has_rule("trace.matchup-before-recovery"));
}

TEST(TraceLintTest, MatchupWithoutNormalReturnIsFlagged) {
  Fixture f;
  // NORMAL from the start, but nothing was ever shed/recovered: a
  // match-up record with no prior return-to-NORMAL is causally wrong.
  f.trace.emit(sim::millis(2), TraceKind::kMatchUp, 1001, 0, 2, 0);
  EXPECT_TRUE(f.lint().has_rule("trace.matchup-before-recovery"));
}

TEST(TraceLintTest, MatchupBeforeRecoveryWindowIsFlagged) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kModeChange, 0, 1, 1, 4);
  // Back to NORMAL at cycle 3 with a 4-cycle recovery window: match-up
  // opens at cycle 6 (the window counts the return cycle itself).
  f.trace.emit(sim::millis(3), TraceKind::kModeChange, 1, 0, 3, 4);
  f.trace.emit(sim::millis(4), TraceKind::kMatchUp, 1001, 0, 4, 0);
  EXPECT_TRUE(f.lint().has_rule("trace.matchup-before-recovery"));
}

TEST(TraceLintTest, MatchupAfterRecoveryWindowIsClean) {
  Fixture f;
  f.trace.emit(sim::millis(1), TraceKind::kModeChange, 0, 1, 1, 4);
  f.trace.emit(sim::millis(3), TraceKind::kModeChange, 1, 0, 3, 4);
  f.trace.emit(sim::millis(6), TraceKind::kMatchUp, 1001, 0, 6, 0);
  const Report report = f.lint();
  EXPECT_FALSE(report.has_rule("trace.matchup-before-recovery"))
      << report.render_text();
  EXPECT_FALSE(report.has_rule("trace.mode-change-boundary"));
  EXPECT_FALSE(report.has_rule("trace.shed-outside-degraded"));
}

TEST(TraceLintTest, FloodedRuleIsCapped) {
  Fixture f;
  for (int i = 0; i < 20; ++i) {
    f.trace.emit(sim::millis(1) * (i + 1) + sim::micros(500),
                 TraceKind::kPlanSwap, i + 1, 4, 0);
  }
  const Report report = f.lint();
  EXPECT_EQ(report.count(Severity::kError), 8u)
      << "per-rule diagnostics must be capped";
  EXPECT_EQ(report.count(Severity::kNote), 1u)
      << "the cap must be announced with a suppression note";
}

}  // namespace
}  // namespace coeff::analysis
