// Dynamic-segment probabilistic verifier (DESIGN.md §15): minislot walk
// geometry (starvation by fit and by pLatestTx cutoff), degraded-plan
// load shedding, the correlation-free blocking bound, envelope ordering,
// lint rules, and the static+dynamic end-to-end class merge.
#include "analysis/dyn_wcrt.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "net/workloads.hpp"

namespace coeff::analysis {
namespace {

net::Message dyn_message(int id, int frame_id, std::int64_t size_bits,
                         sim::Time period) {
  net::Message m;
  m.id = id;
  m.name = "dyn_" + std::to_string(id);
  m.node = 0;
  m.kind = net::MessageKind::kDynamic;
  m.period = period;
  m.deadline = period;
  m.size_bits = size_bits;
  m.frame_id = frame_id;
  return m;
}

DynWcrtInput base_input(const flexray::ClusterConfig& cluster,
                        const net::MessageSet& dynamics,
                        ProbRetxModel discipline) {
  DynWcrtInput input;
  input.cluster = &cluster;
  input.dynamics = &dynamics;
  input.discipline = discipline;
  input.fault_model.kind = fault::FaultModelKind::kIid;
  input.fault_model.ber = 1e-7;
  return input;
}

TEST(DynWcrt, RejectsMalformedInput) {
  const auto cluster = core::paper_cluster_apps(25);
  net::MessageSet dynamics;
  dynamics.add(dyn_message(1, 16, 128, sim::millis(10)));

  DynWcrtInput input = base_input(cluster, dynamics,
                                  ProbRetxModel::kPlannedSerial);
  input.cluster = nullptr;
  EXPECT_THROW((void)analyze_dyn_wcrt(input), std::invalid_argument);

  input = base_input(cluster, dynamics, ProbRetxModel::kPlannedSerial);
  input.max_slips = 0;
  EXPECT_THROW((void)analyze_dyn_wcrt(input), std::invalid_argument);

  // frame_id 15 is a *static* slot on this 15-static-slot cluster.
  net::MessageSet bad;
  bad.add(dyn_message(1, 15, 128, sim::millis(10)));
  input = base_input(cluster, bad, ProbRetxModel::kPlannedSerial);
  EXPECT_THROW((void)analyze_dyn_wcrt(input), std::invalid_argument);
}

TEST(DynWcrt, LightLoadEnvelopeIsOrderedAndUnblocked) {
  const auto cluster = core::paper_cluster_apps(25);
  net::MessageSet dynamics;
  dynamics.add(dyn_message(1, 16, 128, sim::millis(10)));

  const DynWcrtInput input =
      base_input(cluster, dynamics, ProbRetxModel::kPlannedSerial);
  const DynWcrtResult result = analyze_dyn_wcrt(input);
  ASSERT_EQ(result.messages.size(), 1u);
  const DynMessageProb& mp = result.messages[0];
  EXPECT_FALSE(mp.shed);
  EXPECT_FALSE(mp.starved);
  EXPECT_EQ(mp.baseline_offset, 0);
  EXPECT_GT(mp.slack_minislots, 0);
  // Alone in the segment: nothing blocks it, either way of counting.
  EXPECT_EQ(mp.p_blocked_upper, 0.0);
  EXPECT_EQ(mp.p_blocked_nominal, 0.0);
  // Sound, ordered, non-degenerate envelope from the channel alone.
  EXPECT_GT(mp.p_miss_lower, 0.0);
  EXPECT_LE(mp.p_miss_lower, mp.p_miss_upper);
  EXPECT_LT(mp.p_miss_upper, 1e-3);
  EXPECT_LT(mp.response_p999, sim::millis(10));
  EXPECT_LT(mp.nominal_p999, sim::millis(10));
  ASSERT_EQ(result.classes.size(), 1u);
  EXPECT_EQ(result.classes[0].messages, 1);
}

TEST(DynWcrt, GeometricStarvationCollapsesMirroredEnvelopeOnly) {
  // Baseline walk position 24 with need >= 2 of 25 minislots can never
  // start. The mirrored disciplines have no rescue path: [1, 1]. The
  // CoEfficient slack stealer can still serve the queued entry through a
  // stolen static slot, so only its upper edge collapses.
  const auto cluster = core::paper_cluster_apps(25);
  net::MessageSet dynamics;
  dynamics.add(dyn_message(1, 16 + 24, 128, sim::millis(10)));

  const DynWcrtResult mirrored = analyze_dyn_wcrt(
      base_input(cluster, dynamics, ProbRetxModel::kMirroredRounds));
  ASSERT_EQ(mirrored.messages.size(), 1u);
  EXPECT_TRUE(mirrored.messages[0].starved);
  EXPECT_LT(mirrored.messages[0].slack_minislots, 0);
  EXPECT_EQ(mirrored.messages[0].p_miss_upper, 1.0);
  EXPECT_EQ(mirrored.messages[0].p_miss_lower, 1.0);
  EXPECT_EQ(mirrored.messages[0].response_p999, sim::Time::max());

  const DynWcrtResult serial = analyze_dyn_wcrt(
      base_input(cluster, dynamics, ProbRetxModel::kPlannedSerial));
  ASSERT_EQ(serial.messages.size(), 1u);
  EXPECT_TRUE(serial.messages[0].starved);
  EXPECT_EQ(serial.messages[0].p_miss_upper, 1.0);
  EXPECT_LT(serial.messages[0].p_miss_lower, 1.0);
}

TEST(DynWcrt, PLatestTxCutoffStarvesIndependentlyOfFit) {
  // The same frame fits comfortably by space (needs ~2 of 25 minislots)
  // but its baseline walk position lies past an explicit pLatestTx
  // cutoff, so it slips every cycle forever.
  auto cluster = core::paper_cluster_apps(25);
  cluster.p_latest_tx = units::MinislotId{5};
  cluster.validate();
  net::MessageSet dynamics;
  dynamics.add(dyn_message(1, 16 + 10, 128, sim::millis(10)));

  const DynWcrtResult result = analyze_dyn_wcrt(
      base_input(cluster, dynamics, ProbRetxModel::kMirroredSingle));
  ASSERT_EQ(result.messages.size(), 1u);
  EXPECT_TRUE(result.messages[0].starved);
  EXPECT_EQ(result.messages[0].p_miss_upper, 1.0);
  EXPECT_EQ(result.messages[0].p_miss_lower, 1.0);

  // The identical set on the uncut cluster is perfectly schedulable.
  const auto uncut = core::paper_cluster_apps(25);
  const DynWcrtResult fine = analyze_dyn_wcrt(
      base_input(uncut, dynamics, ProbRetxModel::kMirroredSingle));
  EXPECT_FALSE(fine.messages[0].starved);
  EXPECT_LT(fine.messages[0].p_miss_upper, 1e-3);
}

TEST(DynWcrt, DegradedPlanShedsEveryRelease) {
  const auto cluster = core::paper_cluster_apps(25);
  net::MessageSet dynamics;
  dynamics.add(dyn_message(1, 16, 128, sim::millis(10)));
  dynamics.add(dyn_message(2, 17, 128, sim::millis(20)));

  fault::RetransmissionPlan plan;
  plan.degraded = true;
  DynWcrtInput input =
      base_input(cluster, dynamics, ProbRetxModel::kPlannedSerial);
  input.plan = &plan;
  const DynWcrtResult result = analyze_dyn_wcrt(input);
  ASSERT_EQ(result.messages.size(), 2u);
  for (const DynMessageProb& mp : result.messages) {
    EXPECT_TRUE(mp.shed);
    EXPECT_EQ(mp.p_miss_upper, 1.0);
    EXPECT_EQ(mp.p_miss_lower, 1.0);
  }
  const Report report = lint_dyn(input, result);
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(report.count_rule("analysis.dyn-starvation"), 2u);
  EXPECT_NE(report.render_text().find("sheds every"), std::string::npos);
}

TEST(DynWcrt, HigherPriorityLoadRaisesTheBlockingBoundInOrder) {
  // Priority is frame id: the first frame sees an empty segment, the
  // last sees everyone else's extra minislots. On a deliberately tight
  // 6-minislot segment the tail frame's Markov bound must activate.
  const auto cluster = core::paper_cluster_apps(6);
  net::MessageSet dynamics;
  dynamics.add(dyn_message(1, 16, 512, sim::millis(2)));
  dynamics.add(dyn_message(2, 17, 512, sim::millis(2)));
  dynamics.add(dyn_message(3, 18, 128, sim::millis(10)));

  const DynWcrtInput input =
      base_input(cluster, dynamics, ProbRetxModel::kPlannedSerial);
  const DynWcrtResult result = analyze_dyn_wcrt(input);
  ASSERT_EQ(result.messages.size(), 3u);
  EXPECT_EQ(result.messages[0].p_blocked_upper, 0.0);
  for (const DynMessageProb& mp : result.messages) {
    EXPECT_FALSE(mp.starved) << mp.name;
    EXPECT_LE(mp.p_miss_lower, mp.p_miss_upper) << mp.name;
    EXPECT_LE(mp.p_blocked_upper, 1.0) << mp.name;
    // The independence model can never exceed the adversarial bound
    // scaled to a single instance's opportunity window.
    EXPECT_LE(mp.p_blocked_nominal, 1.0) << mp.name;
  }
  // The tail frame faces real contention; the head frame does not.
  EXPECT_GT(result.messages[2].p_blocked_upper,
            result.messages[0].p_blocked_upper);
  EXPECT_GT(result.messages[2].p_blocked_nominal, 0.0);
  // Interference distribution is a proper probability over extra slots.
  EXPECT_NEAR(result.interference.total_mass(), 1.0, 1e-9);
}

TEST(DynWcrt, MissExceedsTargetFiresOnlyWithAnHonestTarget) {
  const auto cluster = core::paper_cluster_apps(25);
  net::MessageSet dynamics;
  dynamics.add(dyn_message(1, 16, 512, sim::millis(10)));

  // A 1e-4 BER channel with one dynamic attempt cannot hold a 1-1e-9
  // reliability claim over an hour of 10 ms releases.
  DynWcrtInput input =
      base_input(cluster, dynamics, ProbRetxModel::kPlannedSerial);
  input.fault_model.ber = 1e-4;
  input.rho = 1.0 - 1e-9;
  DynWcrtResult result = analyze_dyn_wcrt(input);
  Report report = lint_dyn(input, result);
  EXPECT_GE(report.count_rule("analysis.dyn-miss-exceeds-target"), 1u);

  // No target, no rule — the envelope is still reported, just not
  // judged against a claim nobody made.
  input.rho = 0.0;
  result = analyze_dyn_wcrt(input);
  report = lint_dyn(input, result);
  EXPECT_EQ(report.count_rule("analysis.dyn-miss-exceeds-target"), 0u);
}

TEST(DynWcrt, DefaultSaeMixOnAppClusterIsAStandingStarvation) {
  // The shipped 30-frame SAE aperiodic mix walks past minislot 24 on
  // the 25-minislot app cluster: the tail frames are geometrically dead
  // and the analyzer must say so (this is the seeded WILL_FAIL workload
  // behind the coeffctl_analyze_dyn_starvation ctest entry).
  const auto cluster = core::paper_cluster_apps(25);
  sim::Rng rng(0x5DEECE66DULL);
  net::SaeAperiodicOptions sae;
  sae.static_slots = static_cast<int>(cluster.g_number_of_static_slots);
  const net::MessageSet dynamics = net::sae_aperiodic(sae, rng);

  const DynWcrtInput input =
      base_input(cluster, dynamics, ProbRetxModel::kPlannedSerial);
  const DynWcrtResult result = analyze_dyn_wcrt(input);
  int starved = 0;
  for (const DynMessageProb& mp : result.messages) starved += mp.starved;
  EXPECT_GT(starved, 0);
  const Report report = lint_dyn(input, result);
  EXPECT_TRUE(report.has_errors());
  EXPECT_GE(report.count_rule("analysis.dyn-starvation"),
            static_cast<std::size_t>(starved > 8 ? 8 : starved));
}

TEST(DynWcrt, MergeClassEnvelopesTakesWorstEdgesAndSumsCounts) {
  std::vector<ClassProb> statics(2);
  statics[0].sae_class = 'A';
  statics[0].messages = 3;
  statics[0].worst_p_miss_upper = 1e-6;
  statics[0].worst_p_miss_lower = 1e-9;
  statics[1].sae_class = 'D';
  statics[1].messages = 5;
  statics[1].worst_p_miss_upper = 1e-4;
  statics[1].worst_p_miss_lower = 1e-7;
  std::vector<ClassProb> dyns(1);
  dyns[0].sae_class = 'D';
  dyns[0].messages = 7;
  dyns[0].worst_p_miss_upper = 0.25;
  dyns[0].worst_p_miss_lower = 1e-9;

  const std::vector<ClassProb> merged = merge_class_envelopes(statics, dyns);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].sae_class, 'A');
  EXPECT_EQ(merged[0].messages, 3);
  EXPECT_EQ(merged[1].sae_class, 'D');
  EXPECT_EQ(merged[1].messages, 12);
  EXPECT_EQ(merged[1].worst_p_miss_upper, 0.25);
  EXPECT_EQ(merged[1].worst_p_miss_lower, 1e-7);

  EXPECT_TRUE(merge_class_envelopes({}, {}).empty());
  EXPECT_EQ(merge_class_envelopes(statics, {}).size(), 2u);
}

TEST(DynWcrt, RenderingsCarryTheEnvelopeAndMarkers) {
  const auto cluster = core::paper_cluster_apps(25);
  net::MessageSet dynamics;
  dynamics.add(dyn_message(1, 16, 128, sim::millis(10)));
  dynamics.add(dyn_message(2, 16 + 24, 128, sim::millis(10)));  // starved

  const DynWcrtInput input =
      base_input(cluster, dynamics, ProbRetxModel::kMirroredRounds);
  const DynWcrtResult result = analyze_dyn_wcrt(input);
  const std::string text = render_dyn_text(input, result);
  EXPECT_NE(text.find("dynamic-segment probabilistic analysis"),
            std::string::npos);
  EXPECT_NE(text.find("[starved]"), std::string::npos);
  const std::string json = render_dyn_json(input, result);
  EXPECT_NE(json.find("\"starved\":true"), std::string::npos);
  EXPECT_NE(json.find("\"p_miss_upper\":"), std::string::npos);

  const std::string merged = render_end_to_end_text(
      merge_class_envelopes({}, result.classes));
  EXPECT_NE(merged.find("end-to-end class"), std::string::npos);
  const std::string merged_json =
      render_end_to_end_json(merge_class_envelopes({}, result.classes));
  EXPECT_EQ(merged_json.front(), '[');
  EXPECT_EQ(merged_json.back(), ']');
}

}  // namespace
}  // namespace coeff::analysis
