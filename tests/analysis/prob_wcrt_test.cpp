// Probabilistic WCRT verifier: engine closed-form checks, the three
// lint rules (seeded violation + clean-workload negative each), the
// primary-liveness / copy-crediting semantics, and the per-rule
// diagnostic cap.
#include "analysis/prob_wcrt.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/experiment.hpp"
#include "net/message.hpp"
#include "sched/schedule_table.hpp"

namespace coeff::analysis {
namespace {

net::Message static_msg(int id, sim::Time period, std::int64_t size_bits,
                        sim::Time offset = sim::Time::zero(), int node = 0) {
  net::Message m;
  m.id = id;
  m.name = "m" + std::to_string(id);
  m.node = node;
  m.kind = net::MessageKind::kStatic;
  m.period = period;
  m.deadline = period;
  m.offset = offset;
  m.size_bits = size_bits;
  return m;
}

/// Paper application cluster: 1 ms cycle, 15 x 50us static slots.
struct Fixture {
  flexray::ClusterConfig cluster = core::paper_cluster_apps(25);
  net::MessageSet statics;
  fault::RetransmissionPlan plan;

  ProbWcrtInput input(ProbRetxModel d = ProbRetxModel::kPlannedSerial) {
    ProbWcrtInput in;
    in.cluster = &cluster;
    in.statics = &statics;
    in.discipline = d;
    in.fault_model.ber = 1e-7;
    return in;
  }
};

TEST(ProbWcrt, RejectsMalformedInput) {
  ProbWcrtInput in;
  EXPECT_THROW((void)analyze_prob_wcrt(in), std::invalid_argument);
  Fixture f;
  ProbWcrtInput rounds = f.input(ProbRetxModel::kMirroredRounds);
  rounds.rounds = 0;
  EXPECT_THROW((void)analyze_prob_wcrt(rounds), std::invalid_argument);
}

TEST(ProbWcrt, SaeClassBuckets) {
  EXPECT_EQ(sae_class_of(sim::millis(5)), 'A');
  EXPECT_EQ(sae_class_of(sim::millis(10)), 'B');
  EXPECT_EQ(sae_class_of(sim::millis(20)), 'C');
  EXPECT_EQ(sae_class_of(sim::millis(50)), 'D');
  EXPECT_EQ(sae_class_of(sim::millis(51)), 'E');
}

TEST(ProbWcrt, MirroredSingleMatchesClosedForm) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(8), 800));
  ProbWcrtInput in = f.input(ProbRetxModel::kMirroredSingle);
  const ProbWcrtResult result = analyze_prob_wcrt(in);
  ASSERT_EQ(result.messages.size(), 1u);
  fault::AnalyticFailure af(in.fault_model);
  // One mirrored shot inside one cycle (<= D): P(miss) is the pair
  // failure at both envelope edges.
  EXPECT_NEAR(result.messages[0].p_miss_upper, af.mirrored_pair(800), 1e-15);
  EXPECT_NEAR(result.messages[0].p_miss_lower, af.mirrored_pair(800), 1e-15);
  EXPECT_EQ(result.messages[0].timely_attempts, 1);
  EXPECT_TRUE(result.messages[0].primary_live);
}

TEST(ProbWcrt, ZeroBerCleanSetHasZeroUpperMiss) {
  Fixture f;
  for (int i = 1; i <= 4; ++i) {
    f.statics.add(static_msg(i, sim::millis(8), 600, sim::Time::zero(), i));
  }
  f.plan.copies = {2, 2, 2, 2};
  const auto table =
      sched::StaticScheduleTable::build(f.statics, f.cluster, {});
  ProbWcrtInput in = f.input();
  in.plan = &f.plan;
  in.table = &table;
  in.fault_model.ber = 0.0;
  const ProbWcrtResult result = analyze_prob_wcrt(in);
  EXPECT_TRUE(result.copies_credited);
  for (const MessageProb& mp : result.messages) {
    EXPECT_TRUE(mp.primary_live);
    EXPECT_EQ(mp.p_miss_upper, 0.0) << mp.name;
    EXPECT_EQ(mp.p_miss_lower, 0.0) << mp.name;
  }
  EXPECT_EQ(result.log_reliability_upper, 0.0);
  // Zero channel loss + live placements: nothing to report.
  in.rho = 0.9999999;
  EXPECT_TRUE(lint_prob(in, result).empty());
}

// A period == cycle message placed past the last same-cycle slot start
// is overwritten by the next release before its slot fires: the primary
// deterministically never transmits (measured 49/50 instances lost in
// the simulator). The verifier must drive its upper envelope to 1 and
// flag the contradiction, even though the schedule table's latency
// check accepted the placement.
TEST(ProbWcrt, BoundaryCrossingPlacementKillsPrimary) {
  Fixture f;
  // Offset 850us is past every same-cycle slot start (slots end at
  // 750us), so the id-2 message's placement lands base_cycle = 1 while
  // its period is one cycle: the next release overwrites it first.
  f.statics.add(static_msg(1, sim::millis(1), 600, sim::Time::zero(), 1));
  f.statics.add(static_msg(2, sim::millis(1), 600, sim::micros(850), 2));
  const auto table =
      sched::StaticScheduleTable::build(f.statics, f.cluster, {});
  ProbWcrtInput in = f.input();
  in.table = &table;
  const ProbWcrtResult result = analyze_prob_wcrt(in);
  ASSERT_EQ(result.messages.size(), 2u);
  const MessageProb& doomed = result.messages.back();
  ASSERT_EQ(doomed.message_id, 2);
  EXPECT_FALSE(doomed.primary_live);
  EXPECT_EQ(doomed.timely_attempts, 0);
  EXPECT_DOUBLE_EQ(doomed.p_miss_upper, 1.0);
  // The well-placed neighbour keeps a live primary and a tiny envelope.
  EXPECT_TRUE(result.messages.front().primary_live);
  EXPECT_LT(result.messages.front().p_miss_upper, 1e-3);
  const Report report = lint_prob(in, result);
  EXPECT_TRUE(report.has_rule("analysis.kz-contradiction"));
}

// Same condition is harmless when the period spans several cycles: the
// placement may cross a boundary, but the next release is cycles away.
TEST(ProbWcrt, CrossCyclePlacementWithLongPeriodStaysLive) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(1), 600, sim::Time::zero(), 1));
  f.statics.add(static_msg(2, sim::millis(8), 600, sim::micros(850), 2));
  const auto table =
      sched::StaticScheduleTable::build(f.statics, f.cluster, {});
  ProbWcrtInput in = f.input();
  in.table = &table;
  const ProbWcrtResult result = analyze_prob_wcrt(in);
  EXPECT_TRUE(result.messages.back().primary_live);
  EXPECT_LT(result.messages.back().p_miss_upper, 1e-3);
}

// When the plan's copies demand more stolen wire than the schedule
// guarantees, the upper envelope stops crediting them (the admission
// test may drop copies) and the kz-contradiction rule reports the
// oversubscription.
TEST(ProbWcrt, OversubscribedCopiesAreNotCredited) {
  Fixture f;
  // 10 period==cycle messages, 5 copies each: demand 10*5*50us =
  // 2500us/cycle against at most ~250us of guaranteed idle.
  for (int i = 1; i <= 10; ++i) {
    f.statics.add(static_msg(i, sim::millis(1), 600, sim::Time::zero(), i));
  }
  f.plan.copies.assign(10, 5);
  const auto table =
      sched::StaticScheduleTable::build(f.statics, f.cluster, {});
  ProbWcrtInput in = f.input();
  in.plan = &f.plan;
  in.table = &table;
  const ProbWcrtResult result = analyze_prob_wcrt(in);
  EXPECT_FALSE(result.copies_credited);
  EXPECT_GT(result.copy_demand_per_cycle,
            result.guaranteed_service_per_cycle);
  fault::AnalyticFailure af(in.fault_model);
  for (const MessageProb& mp : result.messages) {
    ASSERT_TRUE(mp.primary_live) << mp.name;
    // Upper credits only the owned primary slot; lower still assumes
    // every planned copy lands independently.
    EXPECT_NEAR(mp.p_miss_upper, af.attempt(600), 1e-12) << mp.name;
    EXPECT_LE(mp.p_miss_lower, af.independent_failures(600, 6) * 1.0001);
  }
  const Report report = lint_prob(in, result);
  EXPECT_TRUE(report.has_rule("analysis.kz-contradiction"));
}

TEST(ProbWcrt, MissExceedsTargetFiresOnWeakScheme) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(1), 800));
  ProbWcrtInput in = f.input(ProbRetxModel::kMirroredSingle);
  in.fault_model.ber = 1e-5;  // one mirrored shot cannot reach SIL3
  in.rho = 0.9999999;
  const ProbWcrtResult result = analyze_prob_wcrt(in);
  const Report report = lint_prob(in, result);
  EXPECT_TRUE(report.has_rule("analysis.prob-miss-exceeds-target"));
}

TEST(ProbWcrt, MissExceedsTargetSilentWhenPlanDegraded) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(1), 800));
  f.plan.copies = {0};
  f.plan.degraded = true;  // the plan already admits the target is lost
  f.plan.target_log_reliability = std::log(0.9999999);
  ProbWcrtInput in = f.input();
  in.fault_model.ber = 1e-5;
  in.plan = &f.plan;
  in.rho = 0.9999999;
  const ProbWcrtResult result = analyze_prob_wcrt(in);
  const Report report = lint_prob(in, result);
  EXPECT_FALSE(report.has_rule("analysis.prob-miss-exceeds-target"));
}

// kz-contradiction (b): the sizing meets the target under the
// memoryless model but not under the configured burst channel. The test
// self-calibrates rho to the midpoint of the two accountings.
TEST(ProbWcrt, KzContradictionFiresBetweenIidAndBurstAccounting) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(4), 800));
  ProbWcrtInput in = f.input(ProbRetxModel::kMirroredRounds);
  in.rounds = 2;
  in.fault_model.kind = fault::FaultModelKind::kGilbertElliott;
  in.fault_model.gilbert_elliott.p_good_to_bad = 0.05;
  in.fault_model.gilbert_elliott.p_bad_to_good = 0.2;
  in.fault_model.gilbert_elliott.ber_good = 1e-9;
  in.fault_model.gilbert_elliott.ber_bad = 1e-3;
  // Short horizon: keeps both accountings inside exp() range so the
  // midpoint rho below is a representable probability.
  in.u = sim::seconds(1);

  fault::AnalyticFailure af(in.fault_model);
  const double occ = static_cast<double>(in.u.ns()) /
                     static_cast<double>(sim::millis(4).ns());
  const double chain_log =
      occ * std::log1p(-af.consecutive_pair_failures(800, 2));
  const double iid_log =
      occ * std::log1p(-af.independent_pair_failures(800, 2));
  ASSERT_LT(chain_log, iid_log);  // the burst channel must matter
  in.rho = std::exp((chain_log + iid_log) / 2.0);

  const ProbWcrtResult result = analyze_prob_wcrt(in);
  const Report report = lint_prob(in, result);
  EXPECT_TRUE(report.has_rule("analysis.kz-contradiction"));
}

TEST(ProbWcrt, PerRuleCapBoundsFindings) {
  Fixture f;
  // 14 doomed period==cycle messages (offset past every same-cycle slot
  // start): every one yields a kz-contradiction, far past the cap.
  for (int i = 1; i <= 14; ++i) {
    f.statics.add(
        static_msg(i, sim::millis(1), 600, sim::micros(850), i));
  }
  const auto table =
      sched::StaticScheduleTable::build(f.statics, f.cluster, {});
  ProbWcrtInput in = f.input();
  in.table = &table;
  const ProbWcrtResult result = analyze_prob_wcrt(in);
  std::size_t dead = 0;
  for (const MessageProb& mp : result.messages) dead += !mp.primary_live;
  ASSERT_GT(dead, 8u);
  const Report report = lint_prob(in, result);
  // Cap is 8 findings + 1 suppression note per rule.
  EXPECT_EQ(report.count_rule("analysis.kz-contradiction"), 9u);
}

TEST(ProbWcrt, DivergenceFlagsOnlySamplesOutsideTheEnvelope) {
  std::vector<DivergenceSample> samples;
  DivergenceSample inside;
  inside.label = "inside";
  inside.released = 10000;
  inside.missed = 2000;
  inside.p_lower = 0.0;
  inside.p_upper = 0.25;
  DivergenceSample above;
  above.label = "above";
  above.released = 10000;
  above.missed = 5000;
  above.p_lower = 0.0;
  above.p_upper = 0.01;
  DivergenceSample below;
  below.label = "below";
  below.released = 10000;
  below.missed = 0;
  below.p_lower = 0.4;
  below.p_upper = 0.6;
  samples = {inside, above, below};
  Report report;
  check_divergence(samples, report);
  EXPECT_EQ(report.count_rule("analysis.prob-vs-campaign-divergence"), 2u);
  const std::string text = report.render_text();
  EXPECT_NE(text.find("above"), std::string::npos);
  EXPECT_NE(text.find("below"), std::string::npos);
  EXPECT_EQ(text.find("inside"), std::string::npos);
}

TEST(ProbWcrt, DivergenceSlackAbsorbsBinomialNoise) {
  // 5 sigma + 2/n of slack: a sample right at the upper edge with
  // realistic sampling noise must not fire.
  DivergenceSample s;
  s.label = "edge";
  s.released = 400;
  s.p_lower = 0.0;
  s.p_upper = 0.1;
  s.missed = 48;  // 0.12 measured, within 5*sqrt(.1*.9/400)+2/400 = 0.08
  Report report;
  check_divergence({s}, report);
  EXPECT_TRUE(report.empty());
}

TEST(ProbWcrt, RenderersCarryTheEnvelope) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(8), 600));
  ProbWcrtInput in = f.input(ProbRetxModel::kMirroredSingle);
  const ProbWcrtResult result = analyze_prob_wcrt(in);
  const std::string text = render_prob_text(in, result);
  EXPECT_NE(text.find("probabilistic WCRT analysis"), std::string::npos);
  EXPECT_NE(text.find("m1"), std::string::npos);
  const std::string json = render_prob_json(in, result);
  EXPECT_NE(json.find("\"p_miss_upper\""), std::string::npos);
  EXPECT_NE(json.find("\"primary_live\":true"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);  // valid JSON doubles only
}

}  // namespace
}  // namespace coeff::analysis
