#include "analysis/diagnostic.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace coeff::analysis {
namespace {

TEST(RuleCatalogTest, IdsAreUniqueAndNamespaced) {
  std::set<std::string> ids;
  for (const RuleInfo& r : rule_catalog()) {
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate rule id " << r.id;
    const std::string id = r.id;
    EXPECT_TRUE(id.rfind("schedule.", 0) == 0 || id.rfind("trace.", 0) == 0 ||
                id.rfind("engine.", 0) == 0 || id.rfind("campaign.", 0) == 0 ||
                id.rfind("analysis.", 0) == 0)
        << id
        << " is outside the schedule./trace./engine./campaign./analysis."
           " namespaces";
    EXPECT_NE(std::string(r.summary), "");
  }
  // The catalog itself is the single source of truth for its size; the
  // set only shrinks it if an id is duplicated, which the loop rejects.
  EXPECT_EQ(ids.size(), rule_catalog().size());
  EXPECT_NE(find_rule("schedule.macrotick-roundtrip"), nullptr);
}

TEST(RuleCatalogTest, CatalogIntegrityEveryRuleIsFullyDocumented) {
  // Hardened-catalog contract: every rule carries a unique id, a
  // non-empty description, and a non-empty help URI (surfaced in both
  // SARIF output and --list-rules), and the rendered rule list mentions
  // every id exactly once.
  const std::string listing = render_rule_list();
  std::set<std::string> ids;
  for (const RuleInfo& r : rule_catalog()) {
    ASSERT_NE(r.id, nullptr);
    ASSERT_NE(r.summary, nullptr);
    ASSERT_NE(r.help_uri, nullptr);
    EXPECT_TRUE(ids.insert(r.id).second) << "duplicate rule id " << r.id;
    EXPECT_NE(std::string(r.summary), "") << r.id << " lacks a description";
    EXPECT_NE(std::string(r.help_uri), "") << r.id << " lacks a help URI";
    EXPECT_NE(listing.find(r.id), std::string::npos)
        << r.id << " missing from render_rule_list()";
    EXPECT_NE(listing.find(r.help_uri), std::string::npos)
        << r.id << "'s help URI missing from render_rule_list()";
  }
  // The dynamic-segment rules landed with DESIGN.md §15 and must anchor
  // there (the help URI is a stable deep link, not decoration).
  for (const char* id : {"analysis.dyn-miss-exceeds-target",
                         "analysis.dyn-starvation",
                         "analysis.dyn-vs-campaign-divergence"}) {
    const RuleInfo* rule = find_rule(id);
    ASSERT_NE(rule, nullptr) << id;
    EXPECT_NE(std::string(rule->help_uri).find("dyn_wcrt"),
              std::string::npos)
        << id << " should anchor at the §15 DESIGN.md section";
  }
}

TEST(RuleCatalogTest, FindRuleRoundTripsAndRejectsUnknown) {
  for (const RuleInfo& r : rule_catalog()) {
    const RuleInfo* found = find_rule(r.id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->severity, r.severity);
  }
  EXPECT_EQ(find_rule("schedule.no-such-rule"), nullptr);
}

TEST(ReportTest, AddLooksUpCatalogSeverity) {
  Report report;
  report.add("schedule.deadline-risk", "late");  // warning in the catalog
  report.add("trace.tx-overlap", "clash");       // error in the catalog
  EXPECT_EQ(report.count(Severity::kWarning), 1u);
  EXPECT_EQ(report.count(Severity::kError), 1u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_TRUE(report.has_rule("trace.tx-overlap"));
  EXPECT_FALSE(report.has_rule("trace.retx-causality"));
}

TEST(ReportTest, UnknownRuleDefaultsToError) {
  Report report;
  report.add("not.in.catalog", "mystery");
  EXPECT_TRUE(report.has_errors());
}

TEST(ReportTest, MergeConcatenates) {
  Report a;
  a.add("trace.tx-overlap", "one");
  Report b;
  b.add("trace.tx-overlap", "two");
  a.merge(std::move(b));
  EXPECT_EQ(a.count_rule("trace.tx-overlap"), 2u);
}

TEST(ReportTest, RenderTextShowsRuleSeverityAndLocation) {
  Report report;
  Location loc;
  loc.message_id = 7;
  loc.slot = 3;
  report.add("schedule.slot-capacity", "too big", loc);
  const std::string text = report.render_text();
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("schedule.slot-capacity"), std::string::npos);
  EXPECT_NE(text.find("msg 7"), std::string::npos);
  EXPECT_NE(text.find("slot 3"), std::string::npos);
}

TEST(ReportTest, RenderSarifListsCatalogAndEscapesMessages) {
  Report report;
  report.add("trace.cycle-boundary", "bad \"quote\"\nand newline");
  const std::string sarif = report.render_sarif();
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"coeff-lint\""), std::string::npos);
  for (const RuleInfo& r : rule_catalog()) {
    EXPECT_NE(sarif.find(std::string("\"id\":\"") + r.id + '"'),
              std::string::npos)
        << r.id << " missing from the SARIF rules array";
  }
  EXPECT_NE(sarif.find("\"ruleId\":\"trace.cycle-boundary\""),
            std::string::npos);
  EXPECT_NE(sarif.find("bad \\\"quote\\\"\\nand newline"), std::string::npos);
  EXPECT_EQ(sarif.find('\n'), std::string::npos);  // single-line JSON
  // Every catalog rule ships its help URI into the SARIF rules array.
  EXPECT_NE(sarif.find("\"helpUri\":\""), std::string::npos);
  for (const RuleInfo& r : rule_catalog()) {
    EXPECT_NE(sarif.find(std::string("\"helpUri\":\"") + r.help_uri + '"'),
              std::string::npos)
        << r.id << " help URI missing from the SARIF rules array";
  }
}

TEST(StrformatTest, FormatsLikePrintf) {
  EXPECT_EQ(strformat("m %d needs %lld bits", 3, 1024LL),
            "m 3 needs 1024 bits");
}

TEST(SeverityTest, ToStringCoversAllLevels) {
  EXPECT_STREQ(to_string(Severity::kNote), "note");
  EXPECT_STREQ(to_string(Severity::kWarning), "warning");
  EXPECT_STREQ(to_string(Severity::kError), "error");
}

}  // namespace
}  // namespace coeff::analysis
