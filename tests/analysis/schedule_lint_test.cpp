// Seeded-violation fixtures: one test per ScheduleLint rule, each
// asserting the exact rule id fires, plus a clean-config test over the
// shipped paper workloads. The two slack rules (slack-nonnegative,
// slack-monotone) are regression tripwires over curves the SlackTable
// clamps by construction; they are covered by the clean tests and the
// catalog checks rather than a seeded violation.
#include "analysis/schedule_lint.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "fault/iec61508.hpp"
#include "fault/reliability.hpp"
#include "net/workloads.hpp"
#include "sched/schedule_table.hpp"

namespace coeff::analysis {
namespace {

net::Message static_msg(int id, sim::Time period, std::int64_t size_bits,
                        int node = 0) {
  net::Message m;
  m.id = id;
  m.name = "m" + std::to_string(id);
  m.node = node;
  m.kind = net::MessageKind::kStatic;
  m.period = period;
  m.deadline = period;
  m.size_bits = size_bits;
  return m;
}

net::Message dynamic_msg(int id, sim::Time period, std::int64_t size_bits) {
  net::Message m = static_msg(id, period, size_bits);
  m.kind = net::MessageKind::kDynamic;
  m.frame_id = 100 + id;
  return m;
}

/// Minimal structurally-valid fixture on the paper's application
/// cluster (1 ms cycle, 15 static slots).
struct Fixture {
  flexray::ClusterConfig cluster = core::paper_cluster_apps(25);
  net::MessageSet statics;
  net::MessageSet dynamics;

  Report lint() const {
    ScheduleLintInput input;
    input.cluster = &cluster;
    input.statics = &statics;
    input.dynamics = &dynamics;
    return lint_schedule(input);
  }
};

TEST(ScheduleLintTest, ShippedWorkloadsAreClean) {
  for (const char* name : {"bbw", "acc", "apps"}) {
    Fixture f;
    f.statics = std::string(name) == "bbw" ? net::brake_by_wire()
                : std::string(name) == "acc"
                    ? net::adaptive_cruise()
                    : net::brake_by_wire().merged_with(net::adaptive_cruise());
    const auto table =
        sched::StaticScheduleTable::build(f.statics, f.cluster);
    fault::SolverOptions solver;
    solver.rho = fault::reliability_goal(fault::Sil::kSil3, solver.u);
    const auto plan = fault::solve_differentiated(f.statics, solver);

    ScheduleLintInput input;
    input.cluster = &f.cluster;
    input.statics = &f.statics;
    input.dynamics = &f.dynamics;
    input.table = &table;
    input.plan = &plan;
    input.ber = solver.ber;
    input.rho = solver.rho;
    input.u = solver.u;
    const Report report = lint_schedule(input);
    EXPECT_TRUE(report.diagnostics().empty())
        << name << ":\n" << report.render_text();
  }
}

TEST(ScheduleLintTest, ConfigValid) {
  Fixture f;
  f.cluster.g_number_of_static_slots = 0;
  const Report report = f.lint();
  EXPECT_TRUE(report.has_rule("schedule.config-valid"));
  EXPECT_TRUE(report.has_errors());
}

TEST(ScheduleLintTest, NullClusterIsAConfigError) {
  const Report report = lint_schedule(ScheduleLintInput{});
  EXPECT_TRUE(report.has_rule("schedule.config-valid"));
}

TEST(ScheduleLintTest, MacrotickRoundTripCleanOnPaperCluster) {
  Fixture f;
  const Report report = f.lint();
  EXPECT_FALSE(report.has_rule("schedule.macrotick-roundtrip"));
}

TEST(ScheduleLintTest, MacrotickRoundTripFlagsFractionalMicrosecond) {
  Fixture f;
  f.cluster.gd_macrotick = sim::nanos(1500);
  const Report report = f.lint();
  EXPECT_TRUE(report.has_rule("schedule.macrotick-roundtrip"));
  // A warning, not an error: the simulator itself runs fine on a
  // nanosecond grid, only the Microseconds-typed API loses precision.
  EXPECT_FALSE(report.has_errors());
}

TEST(ScheduleLintTest, MessageSetValid) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(1), 64));
  f.statics.add(static_msg(1, sim::millis(1), 64));  // duplicate id
  EXPECT_TRUE(f.lint().has_rule("schedule.message-set-valid"));
}

TEST(ScheduleLintTest, DeadlinePeriod) {
  Fixture f;
  net::Message m = static_msg(1, sim::millis(2), 64);
  m.deadline = sim::millis(3);  // beyond the period
  f.statics.add(m);
  EXPECT_TRUE(f.lint().has_rule("schedule.deadline-period"));
}

TEST(ScheduleLintTest, PeriodCycle) {
  Fixture f;
  // 1.5 ms is not a multiple of the 1 ms communication cycle.
  f.statics.add(static_msg(1, sim::micros(1500), 64));
  EXPECT_TRUE(f.lint().has_rule("schedule.period-cycle"));
}

TEST(ScheduleLintTest, SlotCapacity) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(1), 1 << 20));
  EXPECT_TRUE(f.lint().has_rule("schedule.slot-capacity"));
}

TEST(ScheduleLintTest, MinislotBudget) {
  Fixture f;
  f.dynamics.add(dynamic_msg(1, sim::millis(10), 1 << 20));
  EXPECT_TRUE(f.lint().has_rule("schedule.minislot-budget"));
}

TEST(ScheduleLintTest, MinislotBudgetWhenSegmentIsEmpty) {
  Fixture f;
  // No minislots at all: pLatestTx derives to 0 and nothing dynamic can
  // ever start, yet the cluster itself is still legal.
  f.cluster.g_number_of_minislots = 0;
  f.dynamics.add(dynamic_msg(1, sim::millis(10), 64));
  EXPECT_TRUE(f.lint().has_rule("schedule.minislot-budget"));
}

TEST(ScheduleLintTest, MinislotLoadIsAWarning) {
  Fixture f;
  // Each frame needs a few minislots every cycle; 30 of them oversubscribe
  // the 25-minislot budget in expectation without any single frame being
  // structurally impossible.
  for (int i = 0; i < 30; ++i) {
    f.dynamics.add(dynamic_msg(i + 1, sim::millis(1), 256));
  }
  const Report report = f.lint();
  EXPECT_TRUE(report.has_rule("schedule.minislot-load"));
  EXPECT_FALSE(report.has_errors());
  EXPECT_GE(report.count(Severity::kWarning), 1u);
}

TEST(ScheduleLintTest, HyperperiodOverflow) {
  Fixture f;
  // Pairwise-coprime prime periods: LCM = 983*991*997 ms, about 11 days.
  f.statics.add(static_msg(1, sim::millis(983), 64));
  f.statics.add(static_msg(2, sim::millis(991), 64));
  f.statics.add(static_msg(3, sim::millis(997), 64));
  EXPECT_TRUE(f.lint().has_rule("schedule.hyperperiod-overflow"));
}

TEST(ScheduleLintTest, SlotBounds) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(1), 64));
  sched::SlotAssignment bad;
  bad.message_id = 1;
  bad.slot = units::SlotId{99};  // the apps cluster has 15 static slots
  const auto table = sched::StaticScheduleTable::from_assignments(
      {bad}, f.cluster.g_number_of_static_slots);
  ScheduleLintInput input;
  input.cluster = &f.cluster;
  input.statics = &f.statics;
  input.table = &table;
  EXPECT_TRUE(lint_schedule(input).has_rule("schedule.slot-bounds"));
}

TEST(ScheduleLintTest, SlotBoundsRejectsDegeneratePhase) {
  Fixture f;
  sched::SlotAssignment bad;
  bad.message_id = 1;
  bad.slot = units::SlotId{1};
  bad.repetition = 0;
  const auto table = sched::StaticScheduleTable::from_assignments(
      {bad}, f.cluster.g_number_of_static_slots);
  ScheduleLintInput input;
  input.cluster = &f.cluster;
  input.table = &table;
  EXPECT_TRUE(lint_schedule(input).has_rule("schedule.slot-bounds"));
}

TEST(ScheduleLintTest, FrameIdUnique) {
  Fixture f;
  // Phases (base 0, rep 2) and (base 2, rep 4) coincide at cycles 2, 6, ...
  sched::SlotAssignment x;
  x.message_id = 1;
  x.slot = units::SlotId{1};
  x.base_cycle = units::CycleIndex{0};
  x.repetition = 2;
  sched::SlotAssignment y;
  y.message_id = 2;
  y.slot = units::SlotId{1};
  y.base_cycle = units::CycleIndex{2};
  y.repetition = 4;
  const auto table = sched::StaticScheduleTable::from_assignments(
      {x, y}, f.cluster.g_number_of_static_slots);
  ScheduleLintInput input;
  input.cluster = &f.cluster;
  input.table = &table;
  EXPECT_TRUE(lint_schedule(input).has_rule("schedule.frame-id-unique"));
}

TEST(ScheduleLintTest, DisjointPhasesDoNotCollide) {
  Fixture f;
  sched::SlotAssignment x;
  x.message_id = 1;
  x.slot = units::SlotId{1};
  x.base_cycle = units::CycleIndex{0};
  x.repetition = 2;
  sched::SlotAssignment y;
  y.message_id = 2;
  y.slot = units::SlotId{1};
  y.base_cycle = units::CycleIndex{1};  // odd cycles only: never meets (base 0, rep 2)
  y.repetition = 2;
  const auto table = sched::StaticScheduleTable::from_assignments(
      {x, y}, f.cluster.g_number_of_static_slots);
  ScheduleLintInput input;
  input.cluster = &f.cluster;
  input.table = &table;
  EXPECT_FALSE(lint_schedule(input).has_rule("schedule.frame-id-unique"));
}

TEST(ScheduleLintTest, UnplacedFromOversubscribedBuilder) {
  Fixture f;
  // 16 period-one-cycle messages cannot share 15 exclusive slot phases.
  for (int i = 0; i < 16; ++i) {
    f.statics.add(static_msg(i + 1, sim::millis(1), 64));
  }
  const auto table = sched::StaticScheduleTable::build(f.statics, f.cluster);
  ScheduleLintInput input;
  input.cluster = &f.cluster;
  input.statics = &f.statics;
  input.table = &table;
  EXPECT_TRUE(lint_schedule(input).has_rule("schedule.unplaced"));
}

TEST(ScheduleLintTest, DeadlineRiskIsAWarning) {
  Fixture f;
  // A 30 us deadline is shorter than one 50 us static slot: no TDMA
  // placement can meet it, which the builder records as deadline risk.
  net::Message m = static_msg(1, sim::millis(1), 64);
  m.deadline = sim::micros(30);
  f.statics.add(m);
  const auto table = sched::StaticScheduleTable::build(f.statics, f.cluster);
  ScheduleLintInput input;
  input.cluster = &f.cluster;
  input.statics = &f.statics;
  input.table = &table;
  const Report report = lint_schedule(input);
  EXPECT_TRUE(report.has_rule("schedule.deadline-risk"));
  EXPECT_FALSE(report.has_errors());
}

TEST(ScheduleLintTest, Theorem1RecheckCatchesTamperedPlan) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(1), 64));
  fault::SolverOptions solver;
  solver.rho = fault::reliability_goal(fault::Sil::kSil3, solver.u);
  fault::RetransmissionPlan plan =
      fault::solve_differentiated(f.statics, solver);
  plan.log_reliability += 1e-3;  // claim a reliability the k_z cannot give

  ScheduleLintInput input;
  input.cluster = &f.cluster;
  input.statics = &f.statics;
  input.plan = &plan;
  input.ber = solver.ber;
  input.rho = solver.rho;
  input.u = solver.u;
  EXPECT_TRUE(lint_schedule(input).has_rule("schedule.theorem1-recheck"));
}

TEST(ScheduleLintTest, Theorem1RecheckCatchesSizeMismatch) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(1), 64));
  f.statics.add(static_msg(2, sim::millis(1), 64));
  fault::RetransmissionPlan plan;
  plan.copies = {0};  // one entry for a two-message set

  ScheduleLintInput input;
  input.cluster = &f.cluster;
  input.statics = &f.statics;
  input.plan = &plan;
  EXPECT_TRUE(lint_schedule(input).has_rule("schedule.theorem1-recheck"));
}

TEST(ScheduleLintTest, PlanDegradedIsAWarning) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(1), 64));
  fault::SolverOptions solver;
  solver.ber = 1e-3;  // noisy channel
  solver.rho = 1.0 - 1e-12;
  solver.max_copies_per_message = 1;  // rho unreachable within the bound
  const fault::RetransmissionPlan plan =
      fault::solve_differentiated(f.statics, solver);
  ASSERT_TRUE(plan.degraded);

  ScheduleLintInput input;
  input.cluster = &f.cluster;
  input.statics = &f.statics;
  input.plan = &plan;
  input.ber = solver.ber;
  input.rho = solver.rho;
  input.u = solver.u;
  const Report report = lint_schedule(input);
  EXPECT_TRUE(report.has_rule("schedule.plan-degraded"));
  EXPECT_FALSE(report.has_errors());
}

TEST(ScheduleLintTest, RtaDeadlineIsAWarning) {
  Fixture f;
  // 45 frames x 24 us wire time demand 1.08 ms per 1 ms period: the
  // response-time recurrence cannot fit the lowest-priority frames
  // before their deadlines.
  for (int i = 0; i < 45; ++i) {
    f.statics.add(static_msg(i + 1, sim::millis(1), 1200, i));
  }
  const Report report = f.lint();
  EXPECT_TRUE(report.has_rule("schedule.rta-deadline"));
  EXPECT_FALSE(report.has_errors());
}

TEST(ScheduleLintTest, SemanticRulesAreGatedOnStructuralErrors) {
  Fixture f;
  f.statics.add(static_msg(1, sim::millis(1), 1 << 20));  // slot-capacity
  fault::RetransmissionPlan plan;
  plan.copies = {0, 0, 0};  // size mismatch would fire theorem1-recheck

  ScheduleLintInput input;
  input.cluster = &f.cluster;
  input.statics = &f.statics;
  input.plan = &plan;
  const Report report = lint_schedule(input);
  EXPECT_TRUE(report.has_rule("schedule.slot-capacity"));
  EXPECT_FALSE(report.has_rule("schedule.theorem1-recheck"))
      << "semantic phase must be skipped after a structural error";
}

}  // namespace
}  // namespace coeff::analysis
