#include "core/metrics.hpp"

#include <gtest/gtest.h>

namespace coeff::core {
namespace {

TEST(SegmentMetricsTest, MissRatio) {
  SegmentMetrics m;
  EXPECT_DOUBLE_EQ(m.miss_ratio(), 0.0);
  m.delivered = 75;
  m.missed = 25;
  EXPECT_DOUBLE_EQ(m.miss_ratio(), 0.25);
}

TEST(RunStatsTest, BandwidthUtilization) {
  RunStats s;
  s.bus_bit_rate = 10'000'000;
  s.static_wire_capacity = sim::seconds(1);   // 10 Mbit capacity
  s.dynamic_wire_capacity = sim::seconds(1);  // 10 Mbit capacity
  s.useful_bits_static_wire = 1'000'000;
  s.useful_bits_dynamic_wire = 5'000'000;
  EXPECT_DOUBLE_EQ(s.static_bandwidth_utilization(), 0.1);
  EXPECT_DOUBLE_EQ(s.dynamic_bandwidth_utilization(), 0.5);
  EXPECT_DOUBLE_EQ(s.overall_bandwidth_utilization(), 0.3);
}

TEST(RunStatsTest, ZeroCapacityGivesZeroUtilization) {
  RunStats s;
  s.bus_bit_rate = 10'000'000;
  s.useful_bits_static_wire = 100;
  EXPECT_DOUBLE_EQ(s.static_bandwidth_utilization(), 0.0);
  EXPECT_DOUBLE_EQ(s.overall_bandwidth_utilization(), 0.0);
}

TEST(RunStatsTest, OverallMissRatioPoolsSegments) {
  RunStats s;
  s.statics.delivered = 90;
  s.statics.missed = 10;
  s.dynamics.delivered = 40;
  s.dynamics.missed = 60;
  EXPECT_DOUBLE_EQ(s.overall_miss_ratio(), 70.0 / 200.0);
}

TEST(RunStatsTest, SummaryContainsHeadlineNumbers) {
  RunStats s;
  s.statics.released = 123;
  s.dynamics.missed = 7;
  s.running_time = sim::millis(42);
  const std::string out = s.summary();
  EXPECT_NE(out.find("released=123"), std::string::npos);
  EXPECT_NE(out.find("missed=7"), std::string::npos);
  EXPECT_NE(out.find("42.000ms"), std::string::npos);
}

}  // namespace
}  // namespace coeff::core
