#include "core/hosa.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "net/workloads.hpp"

namespace coeff::core {
namespace {

ExperimentConfig three_way_config() {
  ExperimentConfig config;
  config.cluster = paper_cluster_dynamic_suite(25);
  sim::Rng rng(3);
  net::SyntheticStaticOptions statics;
  statics.count = 100;  // beyond FSPEC's 80 exclusive slots
  config.statics = net::synthetic_static(statics, rng);
  net::SaeAperiodicOptions sae;
  sae.static_slots = 80;
  sae.min_bits = 256;
  sae.max_bits = 2000;
  config.dynamics = net::sae_aperiodic(sae, rng);
  config.arrivals.process = net::ArrivalProcess::kBursty;
  config.arrivals.burst = 3;
  config.ber = 1e-7;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::millis(500);
  return config;
}

TEST(HosaTest, RunsAndSettlesEverything) {
  const auto r = run_experiment(three_way_config(), SchemeKind::kHosa);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.run.statics.delivered + r.run.statics.missed,
            r.run.statics.released);
  EXPECT_EQ(r.run.dynamics.delivered + r.run.dynamics.missed,
            r.run.dynamics.released);
}

TEST(HosaTest, MirrorsEveryFrame) {
  auto config = three_way_config();
  config.ber = 0.0;
  config.rho = 0.5;  // trivially satisfied: no extra redundancy anywhere
  const auto r = run_experiment(config, SchemeKind::kHosa);
  // Every delivered instance cost exactly two copies (A + B).
  EXPECT_EQ(r.run.statics.copies_sent, 2 * r.run.statics.delivered);
}

TEST(HosaTest, MultiplexedTableBeatsFspecOnStatics) {
  // 100 static messages: HOSA's multiplexed table places all of them,
  // FSPEC's exclusive slots cannot.
  const auto config = three_way_config();
  const auto hosa = run_experiment(config, SchemeKind::kHosa);
  const auto fspec = run_experiment(config, SchemeKind::kFspec);
  EXPECT_LT(hosa.run.statics.miss_ratio(), fspec.run.statics.miss_ratio());
}

TEST(HosaTest, NoSlackStealingLosesToCoEfficientOnDynamics) {
  const auto config = three_way_config();
  const auto hosa = run_experiment(config, SchemeKind::kHosa);
  const auto coeff = run_experiment(config, SchemeKind::kCoEfficient);
  EXPECT_EQ(hosa.run.slack_slots_stolen, 0);
  EXPECT_LE(coeff.run.dynamics.miss_ratio(), hosa.run.dynamics.miss_ratio());
}

TEST(HosaTest, SchemeNameRegistered) {
  EXPECT_STREQ(to_string(SchemeKind::kHosa), "HOSA");
}

TEST(HosaTest, ReliabilityIsMirrorPairByDesign) {
  const auto r = run_experiment(three_way_config(), SchemeKind::kHosa);
  EXPECT_GT(r.reliability_scheduled, 0.0);
  EXPECT_LE(r.reliability_scheduled, 1.0);
  EXPECT_EQ(r.fspec_rounds, 0);
}

}  // namespace
}  // namespace coeff::core
