#include "core/fspec.hpp"

#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "flexray/cluster.hpp"
#include "sim/engine.hpp"

namespace coeff::core {
namespace {

flexray::ClusterConfig small_cluster() {
  flexray::ClusterConfig cfg;
  cfg.g_macro_per_cycle = units::Macroticks{1000};
  cfg.g_number_of_static_slots = 8;
  cfg.gd_static_slot = units::Macroticks{50};
  cfg.g_number_of_minislots = 40;
  cfg.gd_minislot = units::Macroticks{8};
  cfg.bus_bit_rate = 50'000'000;
  cfg.num_nodes = 4;
  cfg.validate();
  return cfg;
}

net::Message static_msg(int id, int node, int period_ms, int bits) {
  net::Message m;
  m.id = id;
  m.node = node;
  m.kind = net::MessageKind::kStatic;
  m.period = sim::millis(period_ms);
  m.deadline = sim::millis(period_ms);
  m.size_bits = bits;
  return m;
}

net::Message dynamic_msg(int id, int node, int frame_id, int bits,
                         int period_ms = 10) {
  net::Message m;
  m.id = id;
  m.node = node;
  m.kind = net::MessageKind::kDynamic;
  m.period = sim::millis(period_ms);
  m.deadline = sim::millis(period_ms);
  m.size_bits = bits;
  m.frame_id = frame_id;
  return m;
}

struct Harness {
  Harness(net::MessageSet statics, net::MessageSet dynamics, int rounds,
          double ber = 0.0, sim::Time window = sim::millis(100))
      : scheduler(small_cluster(), std::move(statics), std::move(dynamics),
                  window, FspecOptions{rounds}),
        injector(ber, 1),
        cluster(engine, small_cluster(), scheduler,
                injector.as_corruption_fn()) {}

  void run(sim::Time until) {
    cluster.run_until(until);
    scheduler.finalize(engine.now());
  }

  sim::Engine engine;
  FspecScheduler scheduler;
  fault::FaultInjector injector;
  flexray::Cluster cluster;
};

TEST(FspecTest, RoundsMustBePositive) {
  EXPECT_THROW(FspecScheduler(small_cluster(), {}, {}, sim::millis(10),
                              FspecOptions{0}),
               std::invalid_argument);
}

TEST(FspecTest, SingleRoundMirrorsEveryInstance) {
  net::MessageSet statics({static_msg(1, 0, 1, 400)});
  Harness h(statics, {}, 1);
  h.run(sim::millis(110));
  const auto& s = h.scheduler.stats().statics;
  EXPECT_EQ(s.released, 100);
  EXPECT_EQ(s.delivered, 100);
  // Every instance carried once on A and once on B.
  EXPECT_EQ(s.copies_sent, 200);
}

TEST(FspecTest, IdleSlotsStayIdle) {
  // One message in an 8-slot segment: 7 slots idle on A, 7 on B, plus
  // the whole dynamic segment. FSPEC never reuses them.
  net::MessageSet statics({static_msg(1, 0, 1, 400)});
  Harness h(statics, {}, 1);
  h.run(sim::millis(50));
  EXPECT_EQ(h.scheduler.stats().slack_slots_stolen, 0);
  EXPECT_EQ(h.scheduler.stats().dynamic_in_static_slots, 0);
  const auto& a = h.cluster.channel(flexray::ChannelId::kA).stats();
  EXPECT_EQ(a.frames, 50);  // exactly one frame per cycle on A
}

TEST(FspecTest, BestEffortDropsRoundsUnderPressure) {
  // rounds=2 but releases arrive every slot occurrence: fresh data
  // preempts the train, so every instance gets exactly one round and
  // the planned retransmissions are silently dropped (the reliability
  // shortfall of §I-Challenge 2).
  net::MessageSet statics({static_msg(1, 0, 1, 400)});
  Harness h(statics, {}, 2);
  h.run(sim::millis(110));
  const auto& s = h.scheduler.stats().statics;
  EXPECT_EQ(s.released, 100);
  EXPECT_EQ(s.missed, 0);
  // One mirrored pair per instance actually flew...
  EXPECT_NEAR(static_cast<double>(s.copies_sent), 200.0, 4.0);
  // ...even though two pairs per instance were planned.
  EXPECT_NEAR(
      static_cast<double>(h.scheduler.stats().retransmission_copies_planned),
      200.0, 4.0);
  EXPECT_LE(h.scheduler.stats().retransmission_copies_sent, 4);
}

TEST(FspecTest, SlowMessagesCompleteAllRounds) {
  // Period 4 ms with an exclusive every-cycle slot: rounds run in
  // consecutive cycles, well within the period.
  net::MessageSet statics({static_msg(1, 0, 4, 400)});
  Harness h(statics, {}, 2);
  h.run(sim::millis(110));
  const auto& s = h.scheduler.stats().statics;
  EXPECT_EQ(s.missed, 0);
  // 25 instances x 2 rounds x 2 channels.
  EXPECT_NEAR(static_cast<double>(s.copies_sent), 25 * 4, 4.0);
  EXPECT_GT(h.scheduler.stats().retransmission_copies_sent, 0);
}

TEST(FspecTest, ExclusiveSlotsExhaustedMeansDataLoss) {
  // Ten messages, eight slots, no multiplexing: two messages get no
  // slot and every one of their instances is lost.
  net::MessageSet statics;
  for (int i = 1; i <= 10; ++i) statics.add(static_msg(i, i % 4, 2, 400));
  Harness h(statics, {}, 1);
  h.run(sim::millis(110));
  const auto& s = h.scheduler.stats().statics;
  EXPECT_EQ(s.released, 10 * 50);
  EXPECT_EQ(s.missed, 2 * 50);
  EXPECT_EQ(s.delivered, 8 * 50);
}

TEST(FspecTest, MirrorSurvivesSingleChannelFault) {
  // BER high enough that one copy often dies, but the A+B pair rarely
  // both die: delivery stays near 100%.
  net::MessageSet statics({static_msg(1, 0, 1, 1500)});
  Harness h(statics, {}, 1, 1e-5);
  h.run(sim::millis(110));
  const auto& s = h.scheduler.stats().statics;
  EXPECT_EQ(s.released, 100);
  EXPECT_GE(s.delivered, 98);
  EXPECT_GT(s.copies_corrupted, 0);
}

TEST(FspecTest, DynamicTrafficIsMirrored) {
  net::MessageSet dynamics({dynamic_msg(10, 0, 9, 200)});
  Harness h({}, dynamics, 1);
  for (int i = 0; i < 5; ++i) {
    h.engine.schedule_at(sim::millis(i * 10), [&h, i] {
      h.scheduler.add_dynamic_arrival(10, sim::millis(i * 10));
    });
  }
  h.run(sim::millis(60));
  const auto& d = h.scheduler.stats().dynamics;
  EXPECT_EQ(d.released, 5);
  EXPECT_EQ(d.delivered, 5);
  EXPECT_EQ(d.copies_sent, 10);  // each instance on A and B
  const auto& a = h.cluster.channel(flexray::ChannelId::kA).stats();
  const auto& b = h.cluster.channel(flexray::ChannelId::kB).stats();
  EXPECT_EQ(a.busy_dynamic, b.busy_dynamic);
}

TEST(FspecTest, UnreachableDynamicFrameIdStarves) {
  // Frame id 200 is beyond the slot-counter range and FSPEC has no
  // slack-stealing rescue: the message is never sent.
  net::MessageSet dynamics({dynamic_msg(10, 0, 200, 200, 20)});
  Harness h({}, dynamics, 1);
  for (int i = 0; i < 4; ++i) {
    h.engine.schedule_at(sim::millis(i * 20), [&h, i] {
      h.scheduler.add_dynamic_arrival(10, sim::millis(i * 20));
    });
  }
  h.run(sim::millis(90));
  const auto& d = h.scheduler.stats().dynamics;
  EXPECT_EQ(d.delivered, 0);
  EXPECT_EQ(d.missed, 4);
}

TEST(FspecTest, RoundsAccessor) {
  FspecScheduler sched(small_cluster(), {}, {}, sim::millis(10),
                       FspecOptions{3});
  EXPECT_EQ(sched.rounds(), 3);
}

}  // namespace
}  // namespace coeff::core
