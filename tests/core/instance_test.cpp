#include "core/instance.hpp"

#include <gtest/gtest.h>

namespace coeff::core {
namespace {

TEST(InstanceStoreTest, KeyPacksMessageAndIndex) {
  const auto k1 = InstanceStore::make_key(7, 3);
  const auto k2 = InstanceStore::make_key(7, 4);
  const auto k3 = InstanceStore::make_key(8, 3);
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
  EXPECT_NE(k2, k3);
  EXPECT_NE(k1, 0u);  // key 0 is reserved as "no instance"
}

TEST(InstanceStoreTest, CreateFindErase) {
  InstanceStore store;
  Instance& inst = store.create(5, 2);
  EXPECT_EQ(inst.message_id, 5);
  EXPECT_EQ(inst.index, 2);
  EXPECT_EQ(store.size(), 1u);
  ASSERT_NE(store.find(inst.key), nullptr);
  EXPECT_EQ(store.find(inst.key)->message_id, 5);
  store.erase(inst.key);
  EXPECT_EQ(store.find(InstanceStore::make_key(5, 2)), nullptr);
  EXPECT_EQ(store.size(), 0u);
}

TEST(InstanceStoreTest, FindUnknownIsNull) {
  InstanceStore store;
  EXPECT_EQ(store.find(12345), nullptr);
}

TEST(InstanceStoreTest, KeysSnapshotSurvivesMutation) {
  InstanceStore store;
  for (int i = 0; i < 10; ++i) store.create(1, i);
  const auto keys = store.keys();
  EXPECT_EQ(keys.size(), 10u);
  // Erase while iterating the snapshot: every key resolves or is gone,
  // never a dangling pointer.
  for (const auto key : keys) {
    if (Instance* inst = store.find(key)) {
      if (inst->index % 2 == 0) store.erase(key);
    }
  }
  EXPECT_EQ(store.size(), 5u);
}

TEST(InstanceStoreTest, DefaultLifecycleFlags) {
  InstanceStore store;
  const Instance& inst = store.create(1, 0);
  EXPECT_FALSE(inst.delivered);
  EXPECT_FALSE(inst.miss_recorded);
  EXPECT_EQ(inst.copies_sent, 0);
  EXPECT_EQ(inst.copies_required, 1);
}

TEST(InstanceStoreTest, ManyMessagesNoKeyCollisions) {
  InstanceStore store;
  for (int m = 1; m <= 200; ++m) {
    for (int i = 0; i < 20; ++i) store.create(m, i);
  }
  EXPECT_EQ(store.size(), 200u * 20u);
}

}  // namespace
}  // namespace coeff::core
