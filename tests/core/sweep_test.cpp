// SweepRunner: the parallel grid must be indistinguishable from the
// serial one — same cell order, bit-identical metrics — and the JSON
// report must carry per-cell and total wall clock.
#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault_model.hpp"
#include "net/workloads.hpp"

namespace coeff::core {
namespace {

// The full Fig.5 grid (16 cells: 4 minislot sizes x 2 BERs x 2
// schemes) replayed serially and with 4 workers. This is the
// acceptance check for the whole subsystem: every headline metric a
// figure binary prints must match bit-for-bit.
TEST(SweepRunnerTest, ParallelMatchesSerialOnFullFig5Grid) {
  const auto cells = bench::fig5_cells();
  ASSERT_EQ(cells.size(), 16u);

  const SweepReport serial = SweepRunner(1).run(cells);
  const SweepReport parallel = SweepRunner(4).run(cells);
  ASSERT_EQ(serial.cells.size(), cells.size());
  ASSERT_EQ(parallel.cells.size(), cells.size());
  EXPECT_EQ(serial.jobs, 1);
  EXPECT_EQ(parallel.jobs, 4);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(cells[i].label);
    EXPECT_EQ(serial.cells[i].label, cells[i].label);
    EXPECT_EQ(parallel.cells[i].label, cells[i].label);
    const ExperimentResult& a = serial.cells[i].result;
    const ExperimentResult& b = parallel.cells[i].result;
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.run.summary(), b.run.summary());
    EXPECT_EQ(a.run.overall_miss_ratio(), b.run.overall_miss_ratio());
    EXPECT_EQ(a.run.running_time.as_seconds(), b.run.running_time.as_seconds());
    EXPECT_EQ(a.cycles_run, b.cycles_run);
    EXPECT_EQ(a.reliability_scheduled, b.reliability_scheduled);
    EXPECT_EQ(a.drained, b.drained);
  }
}

// The fault-resilience layer must compose with the parallel runner:
// correlated fault models, a mid-run BER step and the online re-planning
// monitor in every cell, jobs=1 vs jobs=4 bit-identical (acceptance
// criterion for the resilience PR).
TEST(SweepRunnerTest, FaultModelAndMonitorCellsAreDeterministicAcrossJobs) {
  std::vector<SweepCell> cells;
  for (const auto kind :
       {fault::FaultModelKind::kIid, fault::FaultModelKind::kGilbertElliott,
        fault::FaultModelKind::kCommonMode}) {
    for (const std::uint64_t seed : {42ULL, 7ULL}) {
      SweepCell cell;
      cell.config.cluster = paper_cluster_apps();
      cell.config.statics = net::brake_by_wire();
      cell.config.ber = 1e-7;
      cell.config.seed = seed;
      cell.config.batch_window = sim::millis(400);
      cell.config.fault_model.kind = kind;
      cell.config.fault_model.common_fraction = 0.5;
      cell.config.fault_model.gilbert_elliott.p_good_to_bad = 0.01;
      cell.config.ber_step_at = sim::millis(150);
      cell.config.ber_step = 1e-5;
      cell.config.enable_monitor = true;
      cell.config.monitor.window_cycles = 50;
      cell.config.monitor.min_window_frames = 200;
      cell.config.monitor.cooldown_cycles = 50;
      cell.label = std::string("resil/") + fault::to_string(kind) +
                   "/seed=" + std::to_string(seed);
      cells.push_back(std::move(cell));
    }
  }

  const SweepReport serial = SweepRunner(1).run(cells);
  const SweepReport parallel = SweepRunner(4).run(cells);
  ASSERT_EQ(serial.cells.size(), cells.size());
  ASSERT_EQ(parallel.cells.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    SCOPED_TRACE(cells[i].label);
    const ExperimentResult& a = serial.cells[i].result;
    const ExperimentResult& b = parallel.cells[i].result;
    EXPECT_EQ(a.run.summary(), b.run.summary());
    EXPECT_EQ(a.run.plan_swaps, b.run.plan_swaps);
    EXPECT_EQ(a.run.dynamic_frames_shed, b.run.dynamic_frames_shed);
    EXPECT_EQ(a.final_plan.copies, b.final_plan.copies);
    EXPECT_EQ(a.run.statics.copies_corrupted, b.run.statics.copies_corrupted);
    EXPECT_EQ(a.cycles_run, b.cycles_run);
  }
}

TEST(SweepRunnerTest, ResolveJobsPrefersExplicitThenEnvThenHardware) {
  ASSERT_EQ(setenv("COEFF_JOBS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(SweepRunner::resolve_jobs(5), 5);  // explicit wins
  EXPECT_EQ(SweepRunner::resolve_jobs(0), 3);  // env fallback
  ASSERT_EQ(unsetenv("COEFF_JOBS"), 0);
  EXPECT_GE(SweepRunner::resolve_jobs(0), 1);  // hardware fallback
}

TEST(SweepRunnerTest, EmptyGridYieldsEmptyReport) {
  const SweepReport report = SweepRunner(4).run({});
  EXPECT_TRUE(report.cells.empty());
  EXPECT_EQ(report.serial_estimate_seconds, 0.0);
}

TEST(SweepReportJsonTest, CarriesPerCellAndTotalWallClock) {
  auto cells = bench::fig5_cells();
  cells.resize(2);
  const SweepReport report = SweepRunner(1).run(cells);
  const std::string json = sweep_report_json(report, "unit \"suite\"");

  EXPECT_NE(json.find("\"suite\": \"unit \\\"suite\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"total_wall_s\": "), std::string::npos);
  EXPECT_NE(json.find("\"serial_estimate_s\": "), std::string::npos);
  EXPECT_NE(json.find("\"speedup_vs_serial_estimate\": "), std::string::npos);
  std::size_t labels = 0;
  for (std::size_t pos = json.find("\"label\": "); pos != std::string::npos;
       pos = json.find("\"label\": ", pos + 1)) {
    ++labels;
  }
  EXPECT_EQ(labels, 2u);
  for (const SweepCellResult& cell : report.cells) {
    EXPECT_GE(cell.wall_seconds, 0.0);
    EXPECT_NE(json.find("\"wall_s\": "), std::string::npos);
  }
}

}  // namespace
}  // namespace coeff::core
