#include "core/coefficient.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "fault/injector.hpp"
#include "flexray/cluster.hpp"
#include "net/workloads.hpp"
#include "sim/engine.hpp"

namespace coeff::core {
namespace {

flexray::ClusterConfig small_cluster() {
  flexray::ClusterConfig cfg;
  cfg.g_macro_per_cycle = units::Macroticks{1000};  // 1 ms cycle
  cfg.g_number_of_static_slots = 8;
  cfg.gd_static_slot = units::Macroticks{50};
  cfg.g_number_of_minislots = 40;
  cfg.gd_minislot = units::Macroticks{8};
  cfg.bus_bit_rate = 50'000'000;
  cfg.num_nodes = 4;
  cfg.validate();
  return cfg;
}

net::Message static_msg(int id, int node, int period_ms, int bits,
                        int offset_us = 0) {
  net::Message m;
  m.id = id;
  m.node = node;
  m.kind = net::MessageKind::kStatic;
  m.period = sim::millis(period_ms);
  m.deadline = sim::millis(period_ms);
  m.offset = sim::micros(offset_us);
  m.size_bits = bits;
  return m;
}

net::Message dynamic_msg(int id, int node, int frame_id, int bits,
                         int period_ms = 10) {
  net::Message m;
  m.id = id;
  m.node = node;
  m.kind = net::MessageKind::kDynamic;
  m.period = sim::millis(period_ms);
  m.deadline = sim::millis(period_ms);
  m.size_bits = bits;
  m.frame_id = frame_id;
  return m;
}

struct Harness {
  explicit Harness(net::MessageSet statics, net::MessageSet dynamics,
                   double ber = 0.0, double rho = 0.0,
                   sim::Time window = sim::millis(100))
      : scheduler(small_cluster(), std::move(statics), std::move(dynamics),
                  window,
                  [&] {
                    CoEfficientOptions opt;
                    opt.ber = ber > 0 ? ber : 1e-7;
                    opt.rho = rho;
                    return opt;
                  }()),
        injector(ber, 1),
        cluster(engine, small_cluster(), scheduler,
                injector.as_corruption_fn()) {}

  void run(sim::Time until) {
    cluster.run_until(until);
    scheduler.finalize(engine.now());
  }

  sim::Engine engine;
  CoEfficientScheduler scheduler;
  fault::FaultInjector injector;
  flexray::Cluster cluster;
};

TEST(CoEfficientTest, FaultFreeFeasibleSetDeliversEverything) {
  net::MessageSet statics({static_msg(1, 0, 1, 400), static_msg(2, 1, 2, 800)});
  Harness h(statics, {});
  h.run(sim::millis(110));
  const auto& s = h.scheduler.stats().statics;
  EXPECT_EQ(s.released, 100 + 50);
  EXPECT_EQ(s.delivered, s.released);
  EXPECT_EQ(s.missed, 0);
  EXPECT_EQ(s.copies_corrupted, 0);
}

TEST(CoEfficientTest, NoReliabilityGoalMeansNoRetransmissions) {
  net::MessageSet statics({static_msg(1, 0, 1, 400)});
  Harness h(statics, {}, 0.0, 0.0);
  h.run(sim::millis(50));
  EXPECT_EQ(h.scheduler.stats().retransmission_copies_planned, 0);
  EXPECT_EQ(h.scheduler.stats().retransmission_copies_sent, 0);
  EXPECT_EQ(h.scheduler.plan().total_copies(), 0);
}

TEST(CoEfficientTest, ReliabilityGoalSchedulesSelectiveCopies) {
  net::MessageSet statics({static_msg(1, 0, 1, 1500),  // large, frequent
                           static_msg(2, 1, 10, 100)});  // small, rare
  Harness h(statics, {}, 1e-6, 1.0 - 1e-6);
  h.run(sim::millis(100));
  const auto& plan = h.scheduler.plan();
  EXPECT_GT(plan.total_copies(), 0);
  // Differentiated: the large frequent message gets at least as many
  // copies as the small rare one.
  EXPECT_GE(plan.copies[0], plan.copies[1]);
  EXPECT_GT(h.scheduler.stats().retransmission_copies_sent, 0);
  EXPECT_GT(h.scheduler.stats().slack_slots_stolen, 0);
}

TEST(CoEfficientTest, RetransmissionCopiesLandInIdleCapacity) {
  // One static message, plenty of idle slots: every planned copy fits,
  // none dropped.
  net::MessageSet statics({static_msg(1, 0, 1, 1500)});
  Harness h(statics, {}, 1e-6, 1.0 - 1e-6);
  h.run(sim::millis(100));
  const auto& st = h.scheduler.stats();
  EXPECT_GT(st.retransmission_copies_planned, 0);
  EXPECT_EQ(st.retransmission_copies_dropped, 0);
  EXPECT_EQ(st.retransmission_copies_sent, st.retransmission_copies_planned);
}

TEST(CoEfficientTest, CertainCorruptionMissesEverything) {
  net::MessageSet statics({static_msg(1, 0, 1, 400)});
  Harness h(statics, {}, 1.0);
  h.run(sim::millis(20));
  const auto& s = h.scheduler.stats().statics;
  EXPECT_EQ(s.delivered, 0);
  EXPECT_GT(s.missed, 0);
  EXPECT_EQ(s.copies_corrupted, s.copies_sent);
}

TEST(CoEfficientTest, DualChannelRedundancyDefeatsSingleChannelFaults) {
  // With rho set, copies land on channel B; a fault on one channel is
  // survivable. Use a high BER so single-copy delivery would fail often.
  net::MessageSet statics({static_msg(1, 0, 1, 1500)});
  Harness with_retx(statics, {}, 1e-5, 1.0 - 1e-6);
  with_retx.run(sim::millis(100));
  Harness without_retx(statics, {}, 1e-5, 0.0);
  without_retx.run(sim::millis(100));
  EXPECT_GE(with_retx.scheduler.stats().statics.delivered,
            without_retx.scheduler.stats().statics.delivered);
}

TEST(CoEfficientTest, DynamicMessagesServedInDynamicSegment) {
  net::MessageSet dynamics({dynamic_msg(10, 0, 9, 200)});
  Harness h({}, dynamics);
  // Inject arrivals manually.
  for (int i = 0; i < 5; ++i) {
    h.engine.schedule_at(sim::millis(i * 10), [&, i] {
      h.scheduler.add_dynamic_arrival(10, sim::millis(i * 10));
    });
  }
  h.run(sim::millis(60));
  const auto& d = h.scheduler.stats().dynamics;
  EXPECT_EQ(d.released, 5);
  EXPECT_EQ(d.delivered, 5);
  EXPECT_EQ(d.missed, 0);
  // Served by FTDMA, not stolen slots.
  EXPECT_EQ(h.scheduler.stats().dynamic_in_static_slots, 0);
  // Latency well under one cycle beyond the segment offset.
  EXPECT_LT(d.latency.mean_ms(), 2.0);
}

TEST(CoEfficientTest, StarvedFrameIdRescuedThroughStolenSlack) {
  // Frame id 200 is far beyond the reachable slot-counter range
  // (8 static slots + 40 minislots); only slack stealing can carry it.
  net::MessageSet dynamics({dynamic_msg(10, 0, 200, 200, 20)});
  Harness h({}, dynamics);
  for (int i = 0; i < 4; ++i) {
    h.engine.schedule_at(sim::millis(i * 20), [&, i] {
      h.scheduler.add_dynamic_arrival(10, sim::millis(i * 20));
    });
  }
  h.run(sim::millis(90));
  const auto& d = h.scheduler.stats().dynamics;
  EXPECT_EQ(d.delivered, 4);
  EXPECT_EQ(h.scheduler.stats().dynamic_in_static_slots, 4);
}

TEST(CoEfficientTest, TightDeadlineRescuedByEarlyCopy) {
  // The message releases at 900 us with a 1 ms deadline; its TDMA slot
  // (early in the next cycle's static segment) would land at ~1.0-1.05 ms
  // after release only if an early slot is free — the offset forces
  // latency past many slots. A retransmission copy can use *any* idle
  // slot and deliver earlier than the primary in adverse placements.
  net::MessageSet statics({static_msg(1, 0, 1, 400, 900),
                           static_msg(2, 1, 1, 400, 0)});
  Harness with_copies(statics, {}, 1e-6, 1.0 - 1e-9);
  with_copies.run(sim::millis(100));
  Harness without_copies(statics, {}, 1e-6, 0.0);
  without_copies.run(sim::millis(100));
  EXPECT_GE(with_copies.scheduler.stats().statics.delivered,
            without_copies.scheduler.stats().statics.delivered);
}

TEST(CoEfficientTest, SharedDynamicFrameIdServedByPriorityQueue) {
  // §II-B: two messages may share a dynamic frame id; the node's
  // priority queue picks which goes out each cycle.
  net::MessageSet dynamics(
      {dynamic_msg(10, 0, 9, 200), dynamic_msg(11, 0, 9, 400)});
  Harness h({}, dynamics);
  h.engine.schedule_at(sim::Time::zero(), [&h] {
    h.scheduler.add_dynamic_arrival(10, sim::Time::zero());
    h.scheduler.add_dynamic_arrival(11, sim::Time::zero());
  });
  h.run(sim::millis(20));
  const auto& d = h.scheduler.stats().dynamics;
  EXPECT_EQ(d.released, 2);
  EXPECT_EQ(d.delivered, 2);
}

TEST(CoEfficientTest, SharedFrameIdAcrossNodesRejected) {
  net::MessageSet dynamics(
      {dynamic_msg(10, 0, 9, 200), dynamic_msg(11, 1, 9, 400)});
  EXPECT_THROW(
      CoEfficientScheduler(small_cluster(), {}, dynamics, sim::millis(10), {}),
      std::invalid_argument);
}

TEST(CoEfficientTest, UnplacedDynamicFrameIdThrows) {
  net::MessageSet dynamics({dynamic_msg(10, 0, 3, 200)});  // id 3 <= 8 slots
  EXPECT_THROW(
      CoEfficientScheduler(small_cluster(), {}, dynamics, sim::millis(10), {}),
      std::invalid_argument);
}

TEST(CoEfficientTest, FpAdmissionPathRuns) {
  net::MessageSet statics({static_msg(1, 0, 1, 1500),
                           static_msg(2, 1, 2, 800)});
  CoEfficientOptions opt;
  opt.ber = 1e-6;
  opt.rho = 1.0 - 1e-6;
  opt.use_fp_admission = true;
  CoEfficientScheduler sched(small_cluster(), statics, {}, sim::millis(50),
                             opt);
  sim::Engine engine;
  fault::FaultInjector injector(0.0, 1);
  flexray::Cluster cluster(engine, small_cluster(), sched,
                           injector.as_corruption_fn());
  cluster.run_until(sim::millis(60));
  sched.finalize(engine.now());
  // Every instance still delivered; the acceptance test may reject some
  // copies but must never break the primaries.
  EXPECT_EQ(sched.stats().statics.missed, 0);
}

TEST(CoEfficientTest, WorkRemainingDrainsToZero) {
  net::MessageSet statics({static_msg(1, 0, 1, 400)});
  Harness h(statics, {}, 0.0, 0.0);
  h.cluster.run_until(sim::millis(101));
  EXPECT_FALSE(h.scheduler.work_remaining());
}

}  // namespace
}  // namespace coeff::core
