#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace coeff::core {
namespace {

ExperimentConfig bbw_config(double ber = 1e-7) {
  ExperimentConfig config;
  config.cluster = paper_cluster_apps();
  config.statics = net::brake_by_wire();
  sim::Rng rng(3);
  net::SaeAperiodicOptions sae;
  sae.static_slots = static_cast<int>(config.cluster.g_number_of_static_slots);
  // The full 30-message SAE set: ids 16..45 against a slot-counter range
  // of ~16..41, so the lowest-priority ids starve without slack rescue.
  sae.count = 30;
  config.dynamics = net::sae_aperiodic(sae, rng);
  config.ber = ber;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::millis(200);
  config.seed = 11;
  return config;
}

TEST(ExperimentTest, PaperClusterFactoriesValidate) {
  EXPECT_NO_THROW(paper_cluster_static_suite(80).validate());
  EXPECT_NO_THROW(paper_cluster_static_suite(120).validate());
  EXPECT_NO_THROW(paper_cluster_dynamic_suite(25).validate());
  EXPECT_NO_THROW(paper_cluster_dynamic_suite(100).validate());
  EXPECT_NO_THROW(paper_cluster_apps().validate());
  // The raised bit rate must make one static slot hold the largest
  // Table-II message (1742 bits).
  EXPECT_GE(paper_cluster_apps().static_slot_capacity_bits(), 1742);
  EXPECT_GE(paper_cluster_static_suite(80).static_slot_capacity_bits(), 1600);
}

TEST(ExperimentTest, BothSchemesRunToCompletion) {
  const auto config = bbw_config();
  for (auto scheme : {SchemeKind::kCoEfficient, SchemeKind::kFspec}) {
    const auto result = run_experiment(config, scheme);
    EXPECT_TRUE(result.drained) << to_string(scheme);
    EXPECT_GT(result.run.statics.released, 0);
    EXPECT_GT(result.run.dynamics.released, 0);
    EXPECT_GT(result.cycles_run, 0);
  }
}

TEST(ExperimentTest, CoEfficientBeatsFspecOnMissRatio) {
  const auto config = bbw_config();
  const auto coeff = run_experiment(config, SchemeKind::kCoEfficient);
  const auto fspec = run_experiment(config, SchemeKind::kFspec);
  EXPECT_LT(coeff.run.overall_miss_ratio(), fspec.run.overall_miss_ratio());
  EXPECT_LT(coeff.run.dynamics.miss_ratio(), fspec.run.dynamics.miss_ratio());
}

TEST(ExperimentTest, CoEfficientUsesSlackFspecDoesNot) {
  const auto config = bbw_config();
  const auto coeff = run_experiment(config, SchemeKind::kCoEfficient);
  const auto fspec = run_experiment(config, SchemeKind::kFspec);
  EXPECT_GT(coeff.run.slack_slots_stolen, 0);
  EXPECT_EQ(fspec.run.slack_slots_stolen, 0);
}

TEST(ExperimentTest, ReliabilityTargetDerivedFromSil) {
  const auto config = bbw_config();
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);
  EXPECT_DOUBLE_EQ(result.rho_target, 1.0 - 1e-7);
  EXPECT_GE(result.reliability_scheduled, result.rho_target);
}

TEST(ExperimentTest, FspecRoundsComeFromUniformSolver) {
  const auto config = bbw_config();
  const auto result = run_experiment(config, SchemeKind::kFspec);
  EXPECT_GE(result.fspec_rounds, 1);
  EXPECT_LE(result.fspec_rounds, 4);
}

TEST(ExperimentTest, DeterministicUnderSeed) {
  const auto config = bbw_config(3e-6);  // high BER so faults matter
  const auto a = run_experiment(config, SchemeKind::kCoEfficient);
  const auto b = run_experiment(config, SchemeKind::kCoEfficient);
  EXPECT_EQ(a.run.statics.delivered, b.run.statics.delivered);
  EXPECT_EQ(a.run.statics.copies_corrupted, b.run.statics.copies_corrupted);
  EXPECT_EQ(a.run.running_time, b.run.running_time);
}

TEST(ExperimentTest, SeedChangesFaultPattern) {
  auto config = bbw_config(3e-6);
  const auto a = run_experiment(config, SchemeKind::kCoEfficient);
  config.seed = 999;
  const auto b = run_experiment(config, SchemeKind::kCoEfficient);
  EXPECT_NE(a.run.statics.copies_corrupted, b.run.statics.copies_corrupted);
}

TEST(ExperimentTest, DrainModeRunsPastWindow) {
  auto config = bbw_config();
  config.drain_batch = true;
  const auto result = run_experiment(config, SchemeKind::kFspec);
  EXPECT_TRUE(result.drained);
  EXPECT_GE(result.run.running_time, config.batch_window);
}

TEST(ExperimentTest, ZeroBerMeansNoCorruption) {
  auto config = bbw_config(0.0);
  config.rho = 0.0;
  config.sil = fault::Sil::kSil1;
  // Force rho to effectively zero by using an sil-derived goal anyway;
  // corruption counters must stay zero regardless.
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);
  EXPECT_EQ(result.run.statics.copies_corrupted, 0);
  EXPECT_EQ(result.run.dynamics.copies_corrupted, 0);
}

TEST(ExperimentTest, WireCapacityAccountedForBothChannels) {
  const auto config = bbw_config();
  const auto result = run_experiment(config, SchemeKind::kCoEfficient);
  const auto& cfg = config.cluster;
  const sim::Time expected_static_per_cycle =
      cfg.static_slot_duration() * cfg.g_number_of_static_slots * 2;
  EXPECT_EQ(result.run.static_wire_capacity,
            expected_static_per_cycle * result.cycles_run);
  EXPECT_GT(result.run.static_wire_busy, sim::Time::zero());
  EXPECT_LE(result.run.static_wire_busy, result.run.static_wire_capacity);
}

TEST(ExperimentTest, InvalidClusterRejected) {
  auto config = bbw_config();
  config.cluster.g_number_of_static_slots = 0;
  EXPECT_THROW((void)run_experiment(config, SchemeKind::kCoEfficient),
               std::invalid_argument);
}

TEST(ExperimentTest, SchemeNames) {
  EXPECT_STREQ(to_string(SchemeKind::kCoEfficient), "CoEfficient");
  EXPECT_STREQ(to_string(SchemeKind::kFspec), "FSPEC");
}

}  // namespace
}  // namespace coeff::core
