// CycleTemplate: the flattened schedule must agree with the
// StaticScheduleTable it compiles at every (slot, cycle) — including
// warm-up cycles before a placement's base cycle, which are idle in the
// table and must stay idle in the template even though the steady-state
// pattern is baked per cycle-in-period.
#include "core/cycle_template.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "net/message.hpp"
#include "sched/schedule_table.hpp"

namespace coeff::core {
namespace {

net::MessageSet four_statics() {
  net::MessageSet set;
  for (int i = 1; i <= 4; ++i) {
    net::Message m;
    m.id = i;
    m.node = i + 10;
    m.kind = net::MessageKind::kStatic;
    m.period = sim::millis(1);
    m.deadline = sim::millis(1);
    m.size_bits = 100 * i;
    set.add(m);
  }
  return set;
}

/// Three slots: slot 1 owned every cycle; slot 2 cycle-multiplexed
/// between two phases of repetition 2; slot 3 owned every cycle but
/// only from cycle 3 on (offset warm-up: base >= table period, the
/// regression that once baked FSPEC exclusive slots permanently idle).
sched::StaticScheduleTable make_table() {
  std::vector<sched::SlotAssignment> assignments;
  assignments.push_back({1, units::SlotId{1}, units::CycleIndex{0}, 1, {}});
  assignments.push_back({2, units::SlotId{2}, units::CycleIndex{1}, 2, {}});
  assignments.push_back({3, units::SlotId{2}, units::CycleIndex{2}, 2, {}});
  assignments.push_back({4, units::SlotId{3}, units::CycleIndex{3}, 1, {}});
  return sched::StaticScheduleTable::from_assignments(std::move(assignments),
                                                      /*num_slots=*/3);
}

TEST(CycleTemplateTest, AgreesWithTableEverywhereIncludingWarmUp) {
  const auto statics = four_statics();
  const auto table = make_table();
  CycleTemplate tpl;
  tpl.rebuild(table, statics, nullptr, /*num_slots=*/3);
  EXPECT_EQ(tpl.period_cycles(), table.table_period_cycles());
  EXPECT_FALSE(tpl.empty());

  for (std::int64_t cycle = 0; cycle < 16; ++cycle) {
    for (std::int64_t slot = 1; slot <= 3; ++slot) {
      const units::SlotId s{slot};
      const units::CycleIndex c{cycle};
      SCOPED_TRACE("slot=" + std::to_string(slot) +
                   " cycle=" + std::to_string(cycle));
      const auto expected = table.message_at(s, c);
      if (expected.has_value()) {
        const net::Message* m = tpl.message_at(s, c);
        ASSERT_NE(m, nullptr);
        EXPECT_EQ(m->id, *expected);
        EXPECT_EQ(tpl.message_id_at(s, c), *expected);
        EXPECT_EQ(tpl.node_at(s, c), m->node);
        EXPECT_EQ(tpl.payload_bits_at(s, c), m->size_bits);
      } else {
        EXPECT_EQ(tpl.message_at(s, c), nullptr);
        EXPECT_EQ(tpl.message_id_at(s, c), -1);
        EXPECT_EQ(tpl.node_at(s, c), -1);
        EXPECT_EQ(tpl.payload_bits_at(s, c), 0);
      }
    }
  }
  // The warm-up shape itself, spelled out: slot 3 idle before cycle 3.
  EXPECT_EQ(tpl.message_at(units::SlotId{3}, units::CycleIndex{0}), nullptr);
  EXPECT_EQ(tpl.message_at(units::SlotId{3}, units::CycleIndex{2}), nullptr);
  ASSERT_NE(tpl.message_at(units::SlotId{3}, units::CycleIndex{3}), nullptr);
  EXPECT_EQ(tpl.message_id_at(units::SlotId{3}, units::CycleIndex{9}), 4);
}

TEST(CycleTemplateTest, BudgetColumnFollowsThePlanAndGatesOnWarmUp) {
  const auto statics = four_statics();
  const auto table = make_table();
  const std::unordered_map<int, int> budget = {{1, 3}, {4, 2}};
  CycleTemplate tpl;
  tpl.rebuild(table, statics, &budget, 3);
  EXPECT_EQ(tpl.budget_at(units::SlotId{1}, units::CycleIndex{0}), 3);
  // Unbudgeted occupant -> 0.
  EXPECT_EQ(tpl.budget_at(units::SlotId{2}, units::CycleIndex{1}), 0);
  // Budgeted occupant still warming up -> 0, active -> its k_z.
  EXPECT_EQ(tpl.budget_at(units::SlotId{3}, units::CycleIndex{1}), 0);
  EXPECT_EQ(tpl.budget_at(units::SlotId{3}, units::CycleIndex{4}), 2);
}

TEST(CycleTemplateTest, IdsOutsideTheMessageSetStayIdle) {
  net::MessageSet statics = four_statics();
  std::vector<sched::SlotAssignment> assignments;
  assignments.push_back({1, units::SlotId{1}, units::CycleIndex{0}, 1, {}});
  // A pre-planned clone id (99) with no Message behind it: the template
  // must leave the occurrence idle for the subclass to resolve.
  assignments.push_back({99, units::SlotId{2}, units::CycleIndex{0}, 1, {}});
  const auto table = sched::StaticScheduleTable::from_assignments(
      std::move(assignments), 2);
  CycleTemplate tpl;
  tpl.rebuild(table, statics, nullptr, 2);
  EXPECT_NE(tpl.message_at(units::SlotId{1}, units::CycleIndex{0}), nullptr);
  EXPECT_EQ(tpl.message_at(units::SlotId{2}, units::CycleIndex{0}), nullptr);
}

TEST(CycleTemplateTest, VersionAdvancesPerRebuild) {
  const auto statics = four_statics();
  const auto table = make_table();
  CycleTemplate tpl;
  EXPECT_EQ(tpl.version(), 0);
  EXPECT_TRUE(tpl.empty());
  tpl.rebuild(table, statics, nullptr, 3);
  EXPECT_EQ(tpl.version(), 1);
  tpl.rebuild(table, statics, nullptr, 3);
  EXPECT_EQ(tpl.version(), 2);
}

}  // namespace
}  // namespace coeff::core
