#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace coeff::sim {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStatsTest, SingleSample) {
  StreamingStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStatsTest, KnownMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, MergeMatchesSequential) {
  StreamingStats a, b, whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 == 0 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingStatsTest, MergeWithEmptySides) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(3.0);
  StreamingStats c = a;
  c.merge(empty);
  EXPECT_EQ(c.count(), 2u);
  StreamingStats d = empty;
  d.merge(a);
  EXPECT_EQ(d.count(), 2u);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(PercentileTrackerTest, NearestRankSemantics) {
  PercentileTracker t;
  for (int i = 1; i <= 100; ++i) t.add(i);
  EXPECT_DOUBLE_EQ(t.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(t.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(t.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(t.percentile(1), 1.0);
  EXPECT_DOUBLE_EQ(t.percentile(0), 1.0);
}

TEST(PercentileTrackerTest, EmptyReturnsZero) {
  PercentileTracker t;
  EXPECT_DOUBLE_EQ(t.percentile(50), 0.0);
}

TEST(PercentileTrackerTest, OutOfRangeThrows) {
  PercentileTracker t;
  t.add(1.0);
  EXPECT_THROW((void)t.percentile(-1), std::invalid_argument);
  EXPECT_THROW((void)t.percentile(101), std::invalid_argument);
}

TEST(PercentileTrackerTest, InterleavedAddAndQuery) {
  PercentileTracker t;
  t.add(5.0);
  EXPECT_DOUBLE_EQ(t.median(), 5.0);
  t.add(1.0);
  t.add(9.0);
  EXPECT_DOUBLE_EQ(t.median(), 5.0);
  t.add(10.0);
  t.add(11.0);
  EXPECT_DOUBLE_EQ(t.median(), 9.0);
}

TEST(HistogramTest, BinsSamplesCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, UnderAndOverflowBins) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive -> overflow
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(HistogramTest, RenderProducesOneLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  const std::string out = h.render();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(LatencyStatsTest, AccumulatesMilliseconds) {
  LatencyStats s;
  s.add(millis(2));
  s.add(millis(4));
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean_ms(), 3.0);
  EXPECT_DOUBLE_EQ(s.max_ms(), 4.0);
}

}  // namespace
}  // namespace coeff::sim
