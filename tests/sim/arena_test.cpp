// Bump-arena contract: pointer-increment allocation, alignment, chunk
// growth, and O(1) reset that retains storage for the next cycle.
#include "sim/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace coeff::sim {
namespace {

TEST(ArenaTest, AllocationsAreDisjointAndAligned) {
  Arena arena;
  auto* a = arena.allocate<std::int64_t>(4);
  auto* b = arena.allocate<std::int32_t>(3);
  auto* c = arena.allocate<double>(2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(std::int64_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::int32_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(double), 0u);
  // Writes to one block must not alias another.
  for (int i = 0; i < 4; ++i) a[i] = 0x0101010101010101LL * (i + 1);
  for (int i = 0; i < 3; ++i) b[i] = -7 * (i + 1);
  for (int i = 0; i < 2; ++i) c[i] = 0.5 * (i + 1);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a[i], 0x0101010101010101LL * (i + 1));
  for (int i = 0; i < 3; ++i) EXPECT_EQ(b[i], -7 * (i + 1));
}

TEST(ArenaTest, ZeroCountReturnsNullWithoutReserving) {
  Arena arena;
  EXPECT_EQ(arena.allocate<int>(0), nullptr);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

TEST(ArenaTest, AllocateZeroedValueInitialises) {
  Arena arena;
  auto* p = arena.allocate_zeroed<std::int64_t>(16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(p[i], 0);
}

TEST(ArenaTest, ResetReusesStorageWithoutGrowth) {
  Arena arena(256);
  (void)arena.allocate<std::int64_t>(16);  // fills one 256-byte chunk
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  // A steady-state cycle loop: same allocation pattern after each
  // reset must never grow the chunk list.
  for (int cycle = 0; cycle < 100; ++cycle) {
    arena.reset();
    (void)arena.allocate<std::int64_t>(16);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
  }
}

TEST(ArenaTest, OversizedRequestGetsItsOwnChunk) {
  Arena arena(64);
  auto* big = arena.allocate<std::int64_t>(100);  // 800 bytes > chunk
  ASSERT_NE(big, nullptr);
  for (int i = 0; i < 100; ++i) big[i] = i;
  EXPECT_GE(arena.bytes_reserved(), 800u);
}

}  // namespace
}  // namespace coeff::sim
