#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace coeff::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(micros(30), [&] { order.push_back(3); });
  q.push(micros(10), [&] { order.push_back(1); });
  q.push(micros(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimestampsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(micros(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(micros(50), [] {});
  q.push(micros(20), [] {});
  EXPECT_EQ(q.next_time(), micros(20));
}

TEST(EventQueueTest, CancelRemovesPendingEvent) {
  EventQueue q;
  bool fired = false;
  const auto token = q.push(micros(10), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(token));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelUnknownTokenIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  const auto token = q.push(micros(10), [] {});
  EXPECT_TRUE(q.cancel(token));
  EXPECT_FALSE(q.cancel(token));
}

TEST(EventQueueTest, CancelMiddleEventKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.push(micros(10), [&] { order.push_back(1); });
  const auto token = q.push(micros(20), [&] { order.push_back(2); });
  q.push(micros(30), [&] { order.push_back(3); });
  q.cancel(token);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.push(micros(42), [] {});
  auto [at, fn] = q.pop();
  EXPECT_EQ(at, micros(42));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const auto a = q.push(micros(1), [] {});
  q.push(micros(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, CancelAfterPopIsNoop) {
  // Regression: cancelling a token whose event already fired used to
  // insert a permanent tombstone and corrupt the live count.
  EventQueue q;
  const auto fired = q.push(micros(10), [] {});
  q.push(micros(20), [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(fired));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelAfterPopDoesNotSwallowReusedHeapSlot) {
  EventQueue q;
  const auto a = q.push(micros(10), [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(a));
  // A later event must still be delivered even after the bogus cancel.
  bool fired = false;
  q.push(micros(20), [&] { fired = true; });
  EXPECT_EQ(q.size(), 1u);
  q.pop().second();
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, InterleavedCancelPopKeepsCountConsistent) {
  EventQueue q;
  std::vector<std::uint64_t> tokens;
  for (int i = 0; i < 100; ++i) tokens.push_back(q.push(micros(i), [] {}));
  std::size_t expect = 100;
  for (int i = 0; i < 30; ++i) {  // pop 30
    q.pop();
    --expect;
    EXPECT_EQ(q.size(), expect);
  }
  for (int i = 0; i < 30; ++i) {  // cancelling the popped 30 is a no-op
    EXPECT_FALSE(q.cancel(tokens[static_cast<std::size_t>(i)]));
    EXPECT_EQ(q.size(), expect);
  }
  for (int i = 30; i < 60; ++i) {  // cancel 30 pending
    EXPECT_TRUE(q.cancel(tokens[static_cast<std::size_t>(i)]));
    --expect;
    EXPECT_EQ(q.size(), expect);
  }
  while (!q.empty()) {
    q.pop();
    --expect;
  }
  EXPECT_EQ(expect, 0u);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  for (int i = 999; i >= 0; --i) {
    q.push(micros(i), [] {});
  }
  Time last = Time::zero();
  while (!q.empty()) {
    auto [at, fn] = q.pop();
    EXPECT_GE(at, last);
    last = at;
  }
}

}  // namespace
}  // namespace coeff::sim
