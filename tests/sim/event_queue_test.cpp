#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace coeff::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimestampOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(micros(30), [&] { order.push_back(3); });
  q.push(micros(10), [&] { order.push_back(1); });
  q.push(micros(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimestampsAreFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(micros(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(micros(50), [] {});
  q.push(micros(20), [] {});
  EXPECT_EQ(q.next_time(), micros(20));
}

TEST(EventQueueTest, CancelRemovesPendingEvent) {
  EventQueue q;
  bool fired = false;
  const auto token = q.push(micros(10), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(token));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelUnknownTokenIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  const auto token = q.push(micros(10), [] {});
  EXPECT_TRUE(q.cancel(token));
  EXPECT_FALSE(q.cancel(token));
}

TEST(EventQueueTest, CancelMiddleEventKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.push(micros(10), [&] { order.push_back(1); });
  const auto token = q.push(micros(20), [&] { order.push_back(2); });
  q.push(micros(30), [&] { order.push_back(3); });
  q.cancel(token);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, PopReturnsTimestamp) {
  EventQueue q;
  q.push(micros(42), [] {});
  auto [at, fn] = q.pop();
  EXPECT_EQ(at, micros(42));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const auto a = q.push(micros(1), [] {});
  q.push(micros(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  for (int i = 999; i >= 0; --i) {
    q.push(micros(i), [] {});
  }
  Time last = Time::zero();
  while (!q.empty()) {
    auto [at, fn] = q.pop();
    EXPECT_GE(at, last);
    last = at;
  }
}

}  // namespace
}  // namespace coeff::sim
