#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace coeff::sim {
namespace {

TEST(RandomTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, Uniform01StaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RandomTest, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomTest, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RandomTest, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RandomTest, UniformIntCoversClosedRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RandomTest, UniformIntDegenerateRange) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RandomTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RandomTest, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  const double p = 0.3;
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(RandomTest, ExponentialMeanMatchesRate) {
  Rng rng(29);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(RandomTest, ExponentialIsPositiveAndFinite) {
  Rng rng(31);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.exponential(1.0);
    ASSERT_GE(x, 0.0);
    ASSERT_TRUE(std::isfinite(x));
  }
}

TEST(RandomTest, SplitStreamsAreIndependentOfParentUse) {
  // The child stream derived at the same parent state must be identical
  // regardless of what the parent does afterwards.
  Rng parent1(99);
  Rng child1 = parent1.split();
  Rng parent2(99);
  Rng child2 = parent2.split();
  for (int i = 0; i < 100; ++i) parent1.next_u64();  // diverge parents
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(RandomTest, SplitChildDiffersFromParent) {
  Rng parent(7);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, UniformRangeScales) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(10.0, 20.0);
    ASSERT_GE(x, 10.0);
    ASSERT_LT(x, 20.0);
  }
}

}  // namespace
}  // namespace coeff::sim
