#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace coeff::sim {
namespace {

TEST(RandomTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, Uniform01StaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RandomTest, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RandomTest, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RandomTest, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RandomTest, UniformIntCoversClosedRange) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RandomTest, UniformIntDegenerateRange) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RandomTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RandomTest, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  const double p = 0.3;
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(RandomTest, ExponentialMeanMatchesRate) {
  Rng rng(29);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(RandomTest, ExponentialIsPositiveAndFinite) {
  Rng rng(31);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.exponential(1.0);
    ASSERT_GE(x, 0.0);
    ASSERT_TRUE(std::isfinite(x));
  }
}

TEST(RandomTest, SplitStreamsAreIndependentOfParentUse) {
  // The child stream derived at the same parent state must be identical
  // regardless of what the parent does afterwards.
  Rng parent1(99);
  Rng child1 = parent1.split();
  Rng parent2(99);
  Rng child2 = parent2.split();
  for (int i = 0; i < 100; ++i) parent1.next_u64();  // diverge parents
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(child1.next_u64(), child2.next_u64());
  }
}

TEST(RandomTest, SplitChildDiffersFromParent) {
  Rng parent(7);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, UniformRangeScales) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(10.0, 20.0);
    ASSERT_GE(x, 10.0);
    ASSERT_LT(x, 20.0);
  }
}

// --- Philox4x32-10 ------------------------------------------------------

// Known-answer vectors from the Random123 reference distribution
// (kat_vectors, "philox 4x32 10"). Counter words map little-end first:
// c0 = (ctr1 << 32) | ctr0, c1 = (ctr3 << 32) | ctr2, key likewise.
TEST(PhiloxTest, MatchesReferenceKnownAnswers) {
  {
    const Philox4x32 philox(0);
    const auto b = philox.block(0, 0);
    EXPECT_EQ(b[0], 0x6627e8d5U);
    EXPECT_EQ(b[1], 0xe169c58dU);
    EXPECT_EQ(b[2], 0xbc57ac4cU);
    EXPECT_EQ(b[3], 0x9b00dbd8U);
  }
  {
    const Philox4x32 philox(0xffffffffffffffffULL);
    const auto b =
        philox.block(0xffffffffffffffffULL, 0xffffffffffffffffULL);
    EXPECT_EQ(b[0], 0x408f276dU);
    EXPECT_EQ(b[1], 0x41c83b0eU);
    EXPECT_EQ(b[2], 0xa20bc7c6U);
    EXPECT_EQ(b[3], 0x6d5451fdU);
  }
  {
    const Philox4x32 philox(0x299f31d0a4093822ULL);
    const auto b =
        philox.block(0x85a308d3243f6a88ULL, 0x0370734413198a2eULL);
    EXPECT_EQ(b[0], 0xd16cfe09U);
    EXPECT_EQ(b[1], 0x94fdccebU);
    EXPECT_EQ(b[2], 0x5001e420U);
    EXPECT_EQ(b[3], 0x24126ea1U);
  }
}

// The compiled engine's whole premise: a verdict is a pure function of
// (key, counter) — same inputs, same output, in any evaluation order.
TEST(PhiloxTest, CounterDrawsAreOrderIndependent) {
  const Philox4x32 philox(42);
  std::array<std::uint64_t, 8> forward{};
  for (std::uint64_t i = 0; i < forward.size(); ++i) {
    forward[i] = philox.next_u64(i, 7);
  }
  for (std::uint64_t i = forward.size(); i-- > 0;) {
    EXPECT_EQ(philox.next_u64(i, 7), forward[i]);
  }
  // Distinct counters and keys decorrelate.
  EXPECT_NE(philox.next_u64(0, 7), philox.next_u64(1, 7));
  EXPECT_NE(philox.next_u64(0, 7), philox.next_u64(0, 8));
  EXPECT_NE(philox.next_u64(0, 7), Philox4x32(43).next_u64(0, 7));
}

TEST(PhiloxTest, Uniform01StaysInUnitIntervalAndIsUnbiased) {
  const Philox4x32 philox(9);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = philox.uniform01(static_cast<std::uint64_t>(i), 0);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
  EXPECT_FALSE(philox.bernoulli(0.0, 1, 2));
  EXPECT_TRUE(philox.bernoulli(1.0, 1, 2));
}

}  // namespace
}  // namespace coeff::sim
