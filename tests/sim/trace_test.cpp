#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace coeff::sim {
namespace {

TEST(TraceTest, RecordsEvents) {
  Trace t;
  t.emit(micros(1), TraceKind::kTxStart, 1, 2, 3, 4, "hello");
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].at, micros(1));
  EXPECT_EQ(t.records()[0].kind, TraceKind::kTxStart);
  EXPECT_EQ(t.records()[0].a, 1);
  EXPECT_EQ(t.records()[0].b, 2);
  EXPECT_EQ(t.records()[0].c, 3);
  EXPECT_EQ(t.records()[0].d, 4);
  EXPECT_EQ(t.records()[0].note, "hello");
}

TEST(TraceTest, DisabledTraceRecordsNothing) {
  Trace t;
  t.set_enabled(false);
  t.emit(micros(1), TraceKind::kTxStart);
  EXPECT_TRUE(t.records().empty());
  t.set_enabled(true);
  t.emit(micros(2), TraceKind::kTxSuccess);
  EXPECT_EQ(t.records().size(), 1u);
}

TEST(TraceTest, CountFiltersByKind) {
  Trace t;
  t.emit(micros(1), TraceKind::kTxSuccess);
  t.emit(micros(2), TraceKind::kTxCorrupted);
  t.emit(micros(3), TraceKind::kTxSuccess);
  EXPECT_EQ(t.count(TraceKind::kTxSuccess), 2u);
  EXPECT_EQ(t.count(TraceKind::kTxCorrupted), 1u);
  EXPECT_EQ(t.count(TraceKind::kDeadlineMiss), 0u);
}

TEST(TraceTest, ClearEmptiesTheLog) {
  Trace t;
  t.emit(micros(1), TraceKind::kInfo);
  t.clear();
  EXPECT_TRUE(t.records().empty());
}

TEST(TraceTest, DumpContainsKindNames) {
  Trace t;
  t.emit(micros(1), TraceKind::kSlackStolen, 4, 5);
  const std::string dump = t.dump();
  EXPECT_NE(dump.find("slack_stolen"), std::string::npos);
  EXPECT_NE(dump.find("a=4"), std::string::npos);
}

TEST(TraceTest, AllKindsHaveNames) {
  for (auto kind :
       {TraceKind::kCycleStart, TraceKind::kSlotStart, TraceKind::kTxStart,
        TraceKind::kTxSuccess, TraceKind::kTxCorrupted,
        TraceKind::kRetransmissionScheduled, TraceKind::kSlackStolen,
        TraceKind::kDeadlineMiss, TraceKind::kDeadlineMet,
        TraceKind::kQueueDrop, TraceKind::kBerDrift, TraceKind::kPlanSwap,
        TraceKind::kLoadShed, TraceKind::kNodeCrash, TraceKind::kNodeRestart,
        TraceKind::kChannelDown, TraceKind::kChannelUp, TraceKind::kFailover,
        TraceKind::kVoteResolved, TraceKind::kModeChange,
        TraceKind::kShedByMode, TraceKind::kMatchUp, TraceKind::kInfo}) {
    EXPECT_STRNE(to_string(kind), "unknown");
  }
}

// Exhaustive sweep over every enumerator value: to_string must cover the
// whole enum (no "unknown" fallthrough) with pairwise-distinct names, and
// kTraceKindCount must stay in sync with the enum's tail.
TEST(TraceTest, ToStringCoversEveryEnumerator) {
  std::vector<std::string> names;
  for (int k = 0; k < kTraceKindCount; ++k) {
    const char* name = to_string(static_cast<TraceKind>(k));
    EXPECT_STRNE(name, "unknown") << "enumerator " << k;
    names.emplace_back(name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end())
      << "duplicate TraceKind names";
  EXPECT_EQ(static_cast<int>(TraceKind::kInfo), kTraceKindCount - 1);
}

}  // namespace
}  // namespace coeff::sim
