#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace coeff::sim {
namespace {

TEST(EngineTest, ClockStartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), Time::zero());
}

TEST(EngineTest, RunUntilAdvancesClockToDeadline) {
  Engine e;
  e.run_until(millis(5));
  EXPECT_EQ(e.now(), millis(5));
}

TEST(EngineTest, EventsFireAtTheirTimestamp) {
  Engine e;
  Time observed;
  e.schedule_at(micros(700), [&] { observed = e.now(); });
  e.run_until(millis(1));
  EXPECT_EQ(observed, micros(700));
}

TEST(EngineTest, ScheduleAfterUsesRelativeDelay) {
  Engine e;
  e.run_until(millis(1));
  Time observed;
  e.schedule_after(micros(250), [&] { observed = e.now(); });
  e.run_until(millis(2));
  EXPECT_EQ(observed, millis(1) + micros(250));
}

TEST(EngineTest, SchedulingInThePastThrows) {
  Engine e;
  e.run_until(millis(1));
  EXPECT_THROW(e.schedule_at(micros(1), [] {}), std::invalid_argument);
  EXPECT_THROW(e.schedule_after(micros(1) - micros(2), [] {}),
               std::invalid_argument);
}

TEST(EngineTest, RunUntilLeavesLaterEventsPending) {
  Engine e;
  bool fired = false;
  e.schedule_at(millis(10), [&] { fired = true; });
  e.run_until(millis(5));
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run_until(millis(10));
  EXPECT_TRUE(fired);
}

TEST(EngineTest, EventsCanScheduleMoreEvents) {
  Engine e;
  std::vector<Time> fires;
  // A self-rescheduling 1 ms heartbeat.
  std::function<void()> beat = [&] {
    fires.push_back(e.now());
    if (fires.size() < 5) e.schedule_after(millis(1), beat);
  };
  e.schedule_at(Time::zero(), beat);
  e.run_until(millis(10));
  ASSERT_EQ(fires.size(), 5u);
  for (std::size_t i = 0; i < fires.size(); ++i) {
    EXPECT_EQ(fires[i], millis(static_cast<std::int64_t>(i)));
  }
}

TEST(EngineTest, RunToCompletionDrainsEverything) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 100; ++i) {
    e.schedule_at(micros(i), [&] { ++count; });
  }
  EXPECT_EQ(e.run_to_completion(), 100u);
  EXPECT_EQ(count, 100);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(EngineTest, StepFiresExactlyOneEvent) {
  Engine e;
  int count = 0;
  e.schedule_at(micros(1), [&] { ++count; });
  e.schedule_at(micros(2), [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(e.step());
}

TEST(EngineTest, CancelPreventsFiring) {
  Engine e;
  bool fired = false;
  const auto token = e.schedule_at(micros(5), [&] { fired = true; });
  EXPECT_TRUE(e.cancel(token));
  e.run_until(millis(1));
  EXPECT_FALSE(fired);
}

TEST(EngineTest, EventsFiredCounterAccumulates) {
  Engine e;
  e.schedule_at(micros(1), [] {});
  e.schedule_at(micros(2), [] {});
  e.run_until(millis(1));
  EXPECT_EQ(e.events_fired(), 2u);
}

TEST(EngineTest, NextEventTimeTracksQueueHead) {
  Engine e;
  EXPECT_EQ(e.next_event_time(), Time::max());
  EXPECT_EQ(e.next_event_time(millis(5)), millis(5));  // explicit fallback
  e.schedule_at(micros(30), [] {});
  e.schedule_at(micros(10), [] {});
  EXPECT_EQ(e.next_event_time(), micros(10));
  e.run_until(micros(20));
  EXPECT_EQ(e.next_event_time(), micros(30));
  e.run_until(micros(40));
  EXPECT_EQ(e.next_event_time(), Time::max());
}

// The compiled walk elides run_until whenever next_event_time lies past
// the chunk; that is only sound if a queue-empty engine reports a time
// no event can beat and scheduling from inside a callback updates the
// head immediately.
TEST(EngineTest, NextEventTimeSeesEventsScheduledFromCallbacks) {
  Engine e;
  e.schedule_at(micros(10), [&] { e.schedule_at(micros(25), [] {}); });
  e.run_until(micros(15));
  EXPECT_EQ(e.next_event_time(), micros(25));
}

TEST(EngineTest, ClockNeverMovesBackwards) {
  Engine e;
  std::vector<Time> stamps;
  for (int i = 0; i < 50; ++i) {
    e.schedule_at(micros(100 - i), [&] { stamps.push_back(e.now()); });
  }
  e.run_to_completion();
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_LE(stamps[i - 1], stamps[i]);
  }
}

}  // namespace
}  // namespace coeff::sim
