#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace coeff::sim {
namespace {

TEST(TimeTest, FactoriesScaleToNanoseconds) {
  EXPECT_EQ(nanos(5).ns(), 5);
  EXPECT_EQ(micros(5).ns(), 5'000);
  EXPECT_EQ(millis(5).ns(), 5'000'000);
  EXPECT_EQ(seconds(5).ns(), 5'000'000'000);
}

TEST(TimeTest, DefaultIsZero) {
  EXPECT_EQ(Time{}.ns(), 0);
  EXPECT_EQ(Time::zero().ns(), 0);
}

TEST(TimeTest, ArithmeticIsClosed) {
  EXPECT_EQ((millis(3) + micros(500)).ns(), 3'500'000);
  EXPECT_EQ((millis(3) - micros(500)).ns(), 2'500'000);
  EXPECT_EQ((micros(7) * 3).ns(), 21'000);
  EXPECT_EQ((3 * micros(7)).ns(), 21'000);
}

TEST(TimeTest, DivisionCountsWholeSpans) {
  EXPECT_EQ(millis(10) / millis(3), 3);
  EXPECT_EQ(millis(9) / millis(3), 3);
  EXPECT_EQ(millis(2) / millis(3), 0);
}

TEST(TimeTest, ModuloGivesRemainder) {
  EXPECT_EQ(millis(10) % millis(3), millis(1));
  EXPECT_EQ(millis(9) % millis(3), Time::zero());
}

TEST(TimeTest, ComparisonsAreTotal) {
  EXPECT_LT(micros(1), micros(2));
  EXPECT_LE(micros(2), micros(2));
  EXPECT_GT(millis(1), micros(999));
  EXPECT_EQ(millis(1), micros(1000));
  EXPECT_NE(millis(1), micros(1001));
}

TEST(TimeTest, CompoundAssignment) {
  Time t = millis(1);
  t += micros(500);
  EXPECT_EQ(t, micros(1500));
  t -= micros(1500);
  EXPECT_EQ(t, Time::zero());
}

TEST(TimeTest, ConversionsToFloatingUnits) {
  EXPECT_DOUBLE_EQ(micros(1500).as_ms(), 1.5);
  EXPECT_DOUBLE_EQ(micros(1500).as_us(), 1500.0);
  EXPECT_DOUBLE_EQ(millis(2500).as_seconds(), 2.5);
}

TEST(TimeTest, MaxActsAsInfinity) {
  EXPECT_GT(Time::max(), seconds(1'000'000));
}

TEST(TimeTest, ToStringPicksAdaptiveUnit) {
  EXPECT_EQ(to_string(nanos(17)), "17ns");
  EXPECT_EQ(to_string(micros(4)), "4.000us");
  EXPECT_EQ(to_string(millis(4)), "4.000ms");
  EXPECT_EQ(to_string(seconds(4)), "4.000s");
  EXPECT_EQ(to_string(micros(4700)), "4.700ms");
}

TEST(TimeTest, NegativeSpansBehave) {
  const Time t = micros(1) - micros(3);
  EXPECT_LT(t, Time::zero());
  EXPECT_EQ(t.ns(), -2'000);
}

}  // namespace
}  // namespace coeff::sim
