#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace coeff::runtime {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleCoversJobsInFlightNotJustQueued) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle(): the destructor must finish the queue before join.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SizeClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, JobsRunOnWorkerThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    });
  }
  pool.wait_idle();
  EXPECT_GE(ids.size(), 1u);
  EXPECT_LE(ids.size(), pool.size());
  EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1u);
}

}  // namespace
}  // namespace coeff::runtime
