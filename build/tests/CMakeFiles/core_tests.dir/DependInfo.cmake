
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/coefficient_test.cpp" "tests/CMakeFiles/core_tests.dir/core/coefficient_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/coefficient_test.cpp.o.d"
  "/root/repo/tests/core/experiment_test.cpp" "tests/CMakeFiles/core_tests.dir/core/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/experiment_test.cpp.o.d"
  "/root/repo/tests/core/fspec_test.cpp" "tests/CMakeFiles/core_tests.dir/core/fspec_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/fspec_test.cpp.o.d"
  "/root/repo/tests/core/hosa_test.cpp" "tests/CMakeFiles/core_tests.dir/core/hosa_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/hosa_test.cpp.o.d"
  "/root/repo/tests/core/instance_test.cpp" "tests/CMakeFiles/core_tests.dir/core/instance_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/instance_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/metrics_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/coeff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/coeff_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/coeff_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coeff_net.dir/DependInfo.cmake"
  "/root/repo/build/src/flexray/CMakeFiles/coeff_flexray.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coeff_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
