file(REMOVE_RECURSE
  "CMakeFiles/sched_tests.dir/sched/aperiodic_server_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/aperiodic_server_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/periodic_schedule_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/periodic_schedule_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/rta_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/rta_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/schedule_table_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/schedule_table_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/slack_stealer_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/slack_stealer_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/slack_table_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/slack_table_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/task_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/task_test.cpp.o.d"
  "sched_tests"
  "sched_tests.pdb"
  "sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
