file(REMOVE_RECURSE
  "CMakeFiles/flexray_tests.dir/flexray/bus_test.cpp.o"
  "CMakeFiles/flexray_tests.dir/flexray/bus_test.cpp.o.d"
  "CMakeFiles/flexray_tests.dir/flexray/chi_test.cpp.o"
  "CMakeFiles/flexray_tests.dir/flexray/chi_test.cpp.o.d"
  "CMakeFiles/flexray_tests.dir/flexray/clock_sync_test.cpp.o"
  "CMakeFiles/flexray_tests.dir/flexray/clock_sync_test.cpp.o.d"
  "CMakeFiles/flexray_tests.dir/flexray/cluster_test.cpp.o"
  "CMakeFiles/flexray_tests.dir/flexray/cluster_test.cpp.o.d"
  "CMakeFiles/flexray_tests.dir/flexray/codec_test.cpp.o"
  "CMakeFiles/flexray_tests.dir/flexray/codec_test.cpp.o.d"
  "CMakeFiles/flexray_tests.dir/flexray/config_test.cpp.o"
  "CMakeFiles/flexray_tests.dir/flexray/config_test.cpp.o.d"
  "CMakeFiles/flexray_tests.dir/flexray/frame_test.cpp.o"
  "CMakeFiles/flexray_tests.dir/flexray/frame_test.cpp.o.d"
  "CMakeFiles/flexray_tests.dir/flexray/timing_test.cpp.o"
  "CMakeFiles/flexray_tests.dir/flexray/timing_test.cpp.o.d"
  "CMakeFiles/flexray_tests.dir/flexray/topology_test.cpp.o"
  "CMakeFiles/flexray_tests.dir/flexray/topology_test.cpp.o.d"
  "flexray_tests"
  "flexray_tests.pdb"
  "flexray_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexray_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
