# Empty compiler generated dependencies file for flexray_tests.
# This may be replaced when dependencies are built.
