# Empty dependencies file for fig1_2_running_time.
# This may be replaced when dependencies are built.
