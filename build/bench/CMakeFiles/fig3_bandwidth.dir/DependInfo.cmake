
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_bandwidth.cpp" "bench/CMakeFiles/fig3_bandwidth.dir/fig3_bandwidth.cpp.o" "gcc" "bench/CMakeFiles/fig3_bandwidth.dir/fig3_bandwidth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/coeff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/coeff_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/coeff_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/flexray/CMakeFiles/coeff_flexray.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coeff_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coeff_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
