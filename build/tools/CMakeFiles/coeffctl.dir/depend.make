# Empty dependencies file for coeffctl.
# This may be replaced when dependencies are built.
