file(REMOVE_RECURSE
  "CMakeFiles/coeffctl.dir/coeffctl.cpp.o"
  "CMakeFiles/coeffctl.dir/coeffctl.cpp.o.d"
  "coeffctl"
  "coeffctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coeffctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
