file(REMOVE_RECURSE
  "CMakeFiles/coeff_fault.dir/ber.cpp.o"
  "CMakeFiles/coeff_fault.dir/ber.cpp.o.d"
  "CMakeFiles/coeff_fault.dir/iec61508.cpp.o"
  "CMakeFiles/coeff_fault.dir/iec61508.cpp.o.d"
  "CMakeFiles/coeff_fault.dir/injector.cpp.o"
  "CMakeFiles/coeff_fault.dir/injector.cpp.o.d"
  "CMakeFiles/coeff_fault.dir/reliability.cpp.o"
  "CMakeFiles/coeff_fault.dir/reliability.cpp.o.d"
  "libcoeff_fault.a"
  "libcoeff_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coeff_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
