
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/ber.cpp" "src/fault/CMakeFiles/coeff_fault.dir/ber.cpp.o" "gcc" "src/fault/CMakeFiles/coeff_fault.dir/ber.cpp.o.d"
  "/root/repo/src/fault/iec61508.cpp" "src/fault/CMakeFiles/coeff_fault.dir/iec61508.cpp.o" "gcc" "src/fault/CMakeFiles/coeff_fault.dir/iec61508.cpp.o.d"
  "/root/repo/src/fault/injector.cpp" "src/fault/CMakeFiles/coeff_fault.dir/injector.cpp.o" "gcc" "src/fault/CMakeFiles/coeff_fault.dir/injector.cpp.o.d"
  "/root/repo/src/fault/reliability.cpp" "src/fault/CMakeFiles/coeff_fault.dir/reliability.cpp.o" "gcc" "src/fault/CMakeFiles/coeff_fault.dir/reliability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/coeff_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coeff_net.dir/DependInfo.cmake"
  "/root/repo/build/src/flexray/CMakeFiles/coeff_flexray.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
