file(REMOVE_RECURSE
  "libcoeff_fault.a"
)
