# Empty compiler generated dependencies file for coeff_fault.
# This may be replaced when dependencies are built.
