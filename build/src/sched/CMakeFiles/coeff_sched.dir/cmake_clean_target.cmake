file(REMOVE_RECURSE
  "libcoeff_sched.a"
)
