file(REMOVE_RECURSE
  "CMakeFiles/coeff_sched.dir/aperiodic_server.cpp.o"
  "CMakeFiles/coeff_sched.dir/aperiodic_server.cpp.o.d"
  "CMakeFiles/coeff_sched.dir/periodic_schedule.cpp.o"
  "CMakeFiles/coeff_sched.dir/periodic_schedule.cpp.o.d"
  "CMakeFiles/coeff_sched.dir/rta.cpp.o"
  "CMakeFiles/coeff_sched.dir/rta.cpp.o.d"
  "CMakeFiles/coeff_sched.dir/schedule_table.cpp.o"
  "CMakeFiles/coeff_sched.dir/schedule_table.cpp.o.d"
  "CMakeFiles/coeff_sched.dir/slack_stealer.cpp.o"
  "CMakeFiles/coeff_sched.dir/slack_stealer.cpp.o.d"
  "CMakeFiles/coeff_sched.dir/slack_table.cpp.o"
  "CMakeFiles/coeff_sched.dir/slack_table.cpp.o.d"
  "CMakeFiles/coeff_sched.dir/task.cpp.o"
  "CMakeFiles/coeff_sched.dir/task.cpp.o.d"
  "libcoeff_sched.a"
  "libcoeff_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coeff_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
