# Empty dependencies file for coeff_sched.
# This may be replaced when dependencies are built.
