
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/aperiodic_server.cpp" "src/sched/CMakeFiles/coeff_sched.dir/aperiodic_server.cpp.o" "gcc" "src/sched/CMakeFiles/coeff_sched.dir/aperiodic_server.cpp.o.d"
  "/root/repo/src/sched/periodic_schedule.cpp" "src/sched/CMakeFiles/coeff_sched.dir/periodic_schedule.cpp.o" "gcc" "src/sched/CMakeFiles/coeff_sched.dir/periodic_schedule.cpp.o.d"
  "/root/repo/src/sched/rta.cpp" "src/sched/CMakeFiles/coeff_sched.dir/rta.cpp.o" "gcc" "src/sched/CMakeFiles/coeff_sched.dir/rta.cpp.o.d"
  "/root/repo/src/sched/schedule_table.cpp" "src/sched/CMakeFiles/coeff_sched.dir/schedule_table.cpp.o" "gcc" "src/sched/CMakeFiles/coeff_sched.dir/schedule_table.cpp.o.d"
  "/root/repo/src/sched/slack_stealer.cpp" "src/sched/CMakeFiles/coeff_sched.dir/slack_stealer.cpp.o" "gcc" "src/sched/CMakeFiles/coeff_sched.dir/slack_stealer.cpp.o.d"
  "/root/repo/src/sched/slack_table.cpp" "src/sched/CMakeFiles/coeff_sched.dir/slack_table.cpp.o" "gcc" "src/sched/CMakeFiles/coeff_sched.dir/slack_table.cpp.o.d"
  "/root/repo/src/sched/task.cpp" "src/sched/CMakeFiles/coeff_sched.dir/task.cpp.o" "gcc" "src/sched/CMakeFiles/coeff_sched.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/coeff_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/coeff_net.dir/DependInfo.cmake"
  "/root/repo/build/src/flexray/CMakeFiles/coeff_flexray.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
