# Empty compiler generated dependencies file for coeff_net.
# This may be replaced when dependencies are built.
