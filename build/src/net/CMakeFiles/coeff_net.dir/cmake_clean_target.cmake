file(REMOVE_RECURSE
  "libcoeff_net.a"
)
