
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/csv.cpp" "src/net/CMakeFiles/coeff_net.dir/csv.cpp.o" "gcc" "src/net/CMakeFiles/coeff_net.dir/csv.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/net/CMakeFiles/coeff_net.dir/message.cpp.o" "gcc" "src/net/CMakeFiles/coeff_net.dir/message.cpp.o.d"
  "/root/repo/src/net/signal.cpp" "src/net/CMakeFiles/coeff_net.dir/signal.cpp.o" "gcc" "src/net/CMakeFiles/coeff_net.dir/signal.cpp.o.d"
  "/root/repo/src/net/workloads.cpp" "src/net/CMakeFiles/coeff_net.dir/workloads.cpp.o" "gcc" "src/net/CMakeFiles/coeff_net.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/coeff_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
