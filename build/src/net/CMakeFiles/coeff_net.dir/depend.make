# Empty dependencies file for coeff_net.
# This may be replaced when dependencies are built.
