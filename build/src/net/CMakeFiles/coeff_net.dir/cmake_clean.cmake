file(REMOVE_RECURSE
  "CMakeFiles/coeff_net.dir/csv.cpp.o"
  "CMakeFiles/coeff_net.dir/csv.cpp.o.d"
  "CMakeFiles/coeff_net.dir/message.cpp.o"
  "CMakeFiles/coeff_net.dir/message.cpp.o.d"
  "CMakeFiles/coeff_net.dir/signal.cpp.o"
  "CMakeFiles/coeff_net.dir/signal.cpp.o.d"
  "CMakeFiles/coeff_net.dir/workloads.cpp.o"
  "CMakeFiles/coeff_net.dir/workloads.cpp.o.d"
  "libcoeff_net.a"
  "libcoeff_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coeff_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
