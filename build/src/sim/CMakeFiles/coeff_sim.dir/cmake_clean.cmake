file(REMOVE_RECURSE
  "CMakeFiles/coeff_sim.dir/engine.cpp.o"
  "CMakeFiles/coeff_sim.dir/engine.cpp.o.d"
  "CMakeFiles/coeff_sim.dir/event_queue.cpp.o"
  "CMakeFiles/coeff_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/coeff_sim.dir/random.cpp.o"
  "CMakeFiles/coeff_sim.dir/random.cpp.o.d"
  "CMakeFiles/coeff_sim.dir/stats.cpp.o"
  "CMakeFiles/coeff_sim.dir/stats.cpp.o.d"
  "CMakeFiles/coeff_sim.dir/time.cpp.o"
  "CMakeFiles/coeff_sim.dir/time.cpp.o.d"
  "CMakeFiles/coeff_sim.dir/trace.cpp.o"
  "CMakeFiles/coeff_sim.dir/trace.cpp.o.d"
  "libcoeff_sim.a"
  "libcoeff_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coeff_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
