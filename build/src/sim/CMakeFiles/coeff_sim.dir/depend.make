# Empty dependencies file for coeff_sim.
# This may be replaced when dependencies are built.
