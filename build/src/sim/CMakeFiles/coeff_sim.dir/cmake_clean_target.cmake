file(REMOVE_RECURSE
  "libcoeff_sim.a"
)
