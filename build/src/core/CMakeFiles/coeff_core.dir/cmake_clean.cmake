file(REMOVE_RECURSE
  "CMakeFiles/coeff_core.dir/coefficient.cpp.o"
  "CMakeFiles/coeff_core.dir/coefficient.cpp.o.d"
  "CMakeFiles/coeff_core.dir/experiment.cpp.o"
  "CMakeFiles/coeff_core.dir/experiment.cpp.o.d"
  "CMakeFiles/coeff_core.dir/fspec.cpp.o"
  "CMakeFiles/coeff_core.dir/fspec.cpp.o.d"
  "CMakeFiles/coeff_core.dir/hosa.cpp.o"
  "CMakeFiles/coeff_core.dir/hosa.cpp.o.d"
  "CMakeFiles/coeff_core.dir/metrics.cpp.o"
  "CMakeFiles/coeff_core.dir/metrics.cpp.o.d"
  "CMakeFiles/coeff_core.dir/scheduler_base.cpp.o"
  "CMakeFiles/coeff_core.dir/scheduler_base.cpp.o.d"
  "libcoeff_core.a"
  "libcoeff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coeff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
