file(REMOVE_RECURSE
  "libcoeff_core.a"
)
