# Empty dependencies file for coeff_core.
# This may be replaced when dependencies are built.
