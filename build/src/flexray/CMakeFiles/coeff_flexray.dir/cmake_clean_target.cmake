file(REMOVE_RECURSE
  "libcoeff_flexray.a"
)
