# Empty compiler generated dependencies file for coeff_flexray.
# This may be replaced when dependencies are built.
