
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flexray/bus.cpp" "src/flexray/CMakeFiles/coeff_flexray.dir/bus.cpp.o" "gcc" "src/flexray/CMakeFiles/coeff_flexray.dir/bus.cpp.o.d"
  "/root/repo/src/flexray/chi.cpp" "src/flexray/CMakeFiles/coeff_flexray.dir/chi.cpp.o" "gcc" "src/flexray/CMakeFiles/coeff_flexray.dir/chi.cpp.o.d"
  "/root/repo/src/flexray/clock_sync.cpp" "src/flexray/CMakeFiles/coeff_flexray.dir/clock_sync.cpp.o" "gcc" "src/flexray/CMakeFiles/coeff_flexray.dir/clock_sync.cpp.o.d"
  "/root/repo/src/flexray/cluster.cpp" "src/flexray/CMakeFiles/coeff_flexray.dir/cluster.cpp.o" "gcc" "src/flexray/CMakeFiles/coeff_flexray.dir/cluster.cpp.o.d"
  "/root/repo/src/flexray/codec.cpp" "src/flexray/CMakeFiles/coeff_flexray.dir/codec.cpp.o" "gcc" "src/flexray/CMakeFiles/coeff_flexray.dir/codec.cpp.o.d"
  "/root/repo/src/flexray/config.cpp" "src/flexray/CMakeFiles/coeff_flexray.dir/config.cpp.o" "gcc" "src/flexray/CMakeFiles/coeff_flexray.dir/config.cpp.o.d"
  "/root/repo/src/flexray/frame.cpp" "src/flexray/CMakeFiles/coeff_flexray.dir/frame.cpp.o" "gcc" "src/flexray/CMakeFiles/coeff_flexray.dir/frame.cpp.o.d"
  "/root/repo/src/flexray/timing.cpp" "src/flexray/CMakeFiles/coeff_flexray.dir/timing.cpp.o" "gcc" "src/flexray/CMakeFiles/coeff_flexray.dir/timing.cpp.o.d"
  "/root/repo/src/flexray/topology.cpp" "src/flexray/CMakeFiles/coeff_flexray.dir/topology.cpp.o" "gcc" "src/flexray/CMakeFiles/coeff_flexray.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/coeff_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
