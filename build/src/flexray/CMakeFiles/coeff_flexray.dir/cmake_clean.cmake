file(REMOVE_RECURSE
  "CMakeFiles/coeff_flexray.dir/bus.cpp.o"
  "CMakeFiles/coeff_flexray.dir/bus.cpp.o.d"
  "CMakeFiles/coeff_flexray.dir/chi.cpp.o"
  "CMakeFiles/coeff_flexray.dir/chi.cpp.o.d"
  "CMakeFiles/coeff_flexray.dir/clock_sync.cpp.o"
  "CMakeFiles/coeff_flexray.dir/clock_sync.cpp.o.d"
  "CMakeFiles/coeff_flexray.dir/cluster.cpp.o"
  "CMakeFiles/coeff_flexray.dir/cluster.cpp.o.d"
  "CMakeFiles/coeff_flexray.dir/codec.cpp.o"
  "CMakeFiles/coeff_flexray.dir/codec.cpp.o.d"
  "CMakeFiles/coeff_flexray.dir/config.cpp.o"
  "CMakeFiles/coeff_flexray.dir/config.cpp.o.d"
  "CMakeFiles/coeff_flexray.dir/frame.cpp.o"
  "CMakeFiles/coeff_flexray.dir/frame.cpp.o.d"
  "CMakeFiles/coeff_flexray.dir/timing.cpp.o"
  "CMakeFiles/coeff_flexray.dir/timing.cpp.o.d"
  "CMakeFiles/coeff_flexray.dir/topology.cpp.o"
  "CMakeFiles/coeff_flexray.dir/topology.cpp.o.d"
  "libcoeff_flexray.a"
  "libcoeff_flexray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coeff_flexray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
