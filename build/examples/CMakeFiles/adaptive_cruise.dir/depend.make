# Empty dependencies file for adaptive_cruise.
# This may be replaced when dependencies are built.
