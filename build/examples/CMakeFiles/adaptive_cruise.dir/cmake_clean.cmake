file(REMOVE_RECURSE
  "CMakeFiles/adaptive_cruise.dir/adaptive_cruise.cpp.o"
  "CMakeFiles/adaptive_cruise.dir/adaptive_cruise.cpp.o.d"
  "adaptive_cruise"
  "adaptive_cruise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_cruise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
