# Empty compiler generated dependencies file for brake_by_wire.
# This may be replaced when dependencies are built.
