#!/usr/bin/env python3
"""Offline aggregator for campaign result directories.

Reads a campaign directory produced by `coeffctl campaign run` — the
write-ahead manifest plus the per-shard `shard-NNNN.jsonl` streams —
and prints an aggregate report without needing the coeffctl binary
(e.g. on a laptop that only has the artifacts). Mirrors the dedup
semantics of the in-tree aggregator: rows are deduped by cell keeping
the *last* occurrence (a resumed campaign re-appends re-run cells),
torn tail lines a kill -9 left behind are tolerated and counted.

Usage:
  tools/campaign_report.py DIR [--json] [--quarantined-only]
"""

import argparse
import glob
import json
import os
import sys
import zlib


def load_manifest(path):
    """Parse the key=value manifest, verifying its CRC trailer."""
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except OSError as err:
        raise SystemExit(f"campaign_report: cannot read '{path}': {err}")
    trailer_at = raw.rfind(b"#crc32=")
    if trailer_at < 0:
        raise SystemExit(f"campaign_report: '{path}' has no CRC trailer "
                         "(torn or not a campaign manifest)")
    body, trailer = raw[:trailer_at], raw[trailer_at:].rstrip(b"\n")
    try:
        stored = int(trailer[len(b"#crc32="):], 16)
    except ValueError:
        raise SystemExit(f"campaign_report: '{path}' has a malformed "
                         "CRC trailer")
    if zlib.crc32(body) & 0xFFFFFFFF != stored:
        raise SystemExit(f"campaign_report: '{path}' fails its CRC "
                         "(torn or corrupt manifest)")
    lines = body.decode("utf-8", "replace").splitlines()
    if not lines or lines[0] != "coeffcamp-manifest v1":
        raise SystemExit(f"campaign_report: '{path}' is not a v1 manifest")
    manifest = {}
    for line in lines[1:]:
        if "=" in line:
            key, _, value = line.partition("=")
            manifest[key] = value
    return manifest


def scan_rows(directory):
    """All shard rows, deduped by cell keeping the last occurrence."""
    rows, torn, unparsed, duplicates = {}, 0, 0, 0
    for path in sorted(glob.glob(os.path.join(directory, "shard-*.jsonl"))):
        with open(path, "rb") as f:
            data = f.read()
        if data and not data.endswith(b"\n"):
            torn += 1  # kill residue: drop the unterminated tail line
            data = data[:data.rfind(b"\n") + 1] if b"\n" in data else b""
        for line in data.splitlines():
            if not line.strip():
                continue
            try:
                row = json.loads(line)
                cell = int(row["cell"])
            except (ValueError, KeyError, TypeError):
                unparsed += 1
                continue
            if cell in rows:
                duplicates += 1
            rows[cell] = row
    return ([rows[cell] for cell in sorted(rows)], torn, unparsed, duplicates)


def aggregate(rows, expected):
    agg = {"expected": expected, "ok": 0, "failed": 0, "shed": 0,
           "released": 0, "delivered": 0, "missed": 0, "copies_sent": 0,
           "m_changes": 0, "m_shed": 0, "m_matchup": 0,
           "m_dwell_l1": 0, "m_dwell_l2": 0,
           "e_total_uj": 0.0, "e_sleep_uj": 0.0,
           "miss_ratio_max": 0.0, "by_scheme": {}, "quarantined": []}
    miss_sum = 0.0
    seen = set()
    for row in rows:
        seen.add(row["cell"])
        status = row.get("status", "")
        if status == "failed":
            agg["failed"] += 1
            agg["quarantined"].append(row)
            continue
        if status == "shed":
            agg["shed"] += 1
            continue
        agg["ok"] += 1
        for field in ("released", "delivered", "missed", "copies_sent",
                      "m_changes", "m_shed", "m_matchup",
                      "m_dwell_l1", "m_dwell_l2"):
            agg[field] += int(row.get(field, 0))
        # Mode/energy counters are absent on rows from older campaigns.
        for field in ("e_total_uj", "e_sleep_uj"):
            agg[field] += float(row.get(field, 0.0))
        ratio = float(row.get("miss_ratio", 0.0))
        miss_sum += ratio
        agg["miss_ratio_max"] = max(agg["miss_ratio_max"], ratio)
        group = agg["by_scheme"].setdefault(
            row.get("scheme", "?"), {"cells": 0, "released": 0, "missed": 0})
        group["cells"] += 1
        group["released"] += int(row.get("released", 0))
        group["missed"] += int(row.get("missed", 0))
    agg["miss_ratio_mean"] = miss_sum / agg["ok"] if agg["ok"] else 0.0
    agg["missing"] = sum(1 for cell in range(expected) if cell not in seen)
    return agg


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("directory", help="campaign directory")
    ap.add_argument("--json", action="store_true",
                    help="machine-readable aggregate")
    ap.add_argument("--quarantined-only", action="store_true",
                    help="print only the quarantined cells with repro seeds")
    args = ap.parse_args()

    manifest = load_manifest(
        os.path.join(args.directory, "manifest.coeffcamp"))
    expected = int(manifest.get("cells", "0"))
    rows, torn, unparsed, duplicates = scan_rows(args.directory)
    agg = aggregate(rows, expected)

    if args.quarantined_only:
        for row in agg["quarantined"]:
            print(f"cell={row['cell']} seed={row.get('seed')} "
                  f"attempts={row.get('attempts')} "
                  f"reason={row.get('reason')}")
        return 1 if agg["quarantined"] else 0
    if args.json:
        agg["manifest"] = manifest
        agg["torn_tail_lines"] = torn
        agg["unparsed_lines"] = unparsed
        agg["duplicate_rows"] = duplicates
        print(json.dumps(agg, sort_keys=True))
        return 0
    print(f"campaign  : {manifest.get('name', '?')} "
          f"seed={manifest.get('seed')} cells={expected} "
          f"status={manifest.get('status')}")
    print(f"cells     : ok={agg['ok']} failed={agg['failed']} "
          f"shed={agg['shed']} missing={agg['missing']} / {expected}")
    print(f"instances : released={agg['released']} "
          f"delivered={agg['delivered']} missed={agg['missed']}")
    print(f"miss      : mean={agg['miss_ratio_mean']:.10g} "
          f"max={agg['miss_ratio_max']:.10g}")
    if agg["m_changes"] or agg["m_shed"] or agg["e_total_uj"]:
        print(f"mode      : changes={agg['m_changes']} shed={agg['m_shed']} "
              f"matchup={agg['m_matchup']} dwell_l1={agg['m_dwell_l1']} "
              f"dwell_l2={agg['m_dwell_l2']}")
        print(f"energy    : total_uj={agg['e_total_uj']:.10g} "
              f"sleep_saved_uj={agg['e_sleep_uj']:.10g}")
    if torn or unparsed or duplicates:
        print(f"recovered : torn={torn} unparsed={unparsed} "
              f"duplicates={duplicates} (kill/resume residue)")
    for scheme in sorted(agg["by_scheme"]):
        group = agg["by_scheme"][scheme]
        print(f"  {scheme:<24} cells={group['cells']:<6} "
              f"released={group['released']:<9} missed={group['missed']}")
    for row in agg["quarantined"]:
        print(f"quarantined: cell={row['cell']} seed={row.get('seed')} "
              f"attempts={row.get('attempts')} reason={row.get('reason')}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
