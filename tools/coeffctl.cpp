// coeffctl — command-line experiment driver and offline linter.
//
// Runs one scheduling experiment from the shell, loading message sets
// from CSV or using the built-in workloads, and prints the metrics
// summary; the `lint` subcommand instead runs the static analyzer
// (schedule legality, Theorem-1 recheck, slack/RTA cross-checks, and —
// with --trace — protocol conformance of a recorded run) and exits
// nonzero on any error-severity diagnostic. Examples:
//
//   coeffctl --scheme coefficient --workload bbw --ber 1e-7
//   coeffctl --scheme fspec --statics my_matrix.csv --minislots 25
//   coeffctl --scheme hosa --workload synthetic --messages 100
//            --window-ms 1000 --seed 7
//   coeffctl lint --workload apps --sil 3
//   coeffctl lint --statics my_matrix.csv --trace --sarif report.sarif
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/prob_cli.hpp"
#include "analysis/prob_wcrt.hpp"
#include "analysis/schedule_lint.hpp"
#include "analysis/trace_lint.hpp"
#include "bench_common.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/cross_check.hpp"
#include "campaign/lint.hpp"
#include "campaign/manifest.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "net/csv.hpp"
#include "net/workloads.hpp"
#include "sched/criticality.hpp"
#include "sched/schedule_table.hpp"
#include "sim/trace.hpp"

namespace {

using namespace coeff;

struct CliOptions {
  std::string scheme = "coefficient";
  std::string workload = "bbw";  // bbw | acc | apps | synthetic
  std::string statics_csv;
  std::string dynamics_csv;
  int messages = 100;        // synthetic static count
  std::int64_t minislots = 0;  // 0 = workload default
  double ber = 1e-7;
  int sil = 3;
  std::int64_t window_ms = 1000;
  std::uint64_t seed = 42;
  int burst = 1;
  bool drain = false;
  bool no_dynamics = false;
  flexray::EngineMode engine = flexray::EngineMode::kCompiled;
  int jobs = 1;                // sweep workers (single cell → serial anyway)
  std::string sweep_json;      // empty = no timing report
  fault::FaultModelConfig fault_model;
  std::int64_t ber_step_ms = 0;  // 0 = no step
  double ber_step = -1.0;
  std::int64_t ber_step2_ms = 0;  // 0 = no second step (burst profile)
  double ber_step2 = -1.0;
  bool monitor = false;
  fault::ReliabilityMonitorOptions monitor_opt;

  // --- mixed-criticality modes + energy (DESIGN.md §16) ----------------
  std::string mode_policy;   // empty = protocol off
  std::string criticality;   // empty = kind defaults
  bool power = false;        // per-node DVFS/DPM energy accounting

  // --- structural fault domain -----------------------------------------
  fault::StructuralFaultConfig structural;
  double crash_rate = 0.0;       // stochastic crashes per second (0 = off)
  std::int64_t crash_mttr_ms = 50;
  double outage_rate = 0.0;      // stochastic blackouts per second (0 = off)
  std::int64_t outage_ms = 5;
  int vote = 0;                  // k-replica voting (0 = off)
  bool silent_detect = false;
  int silent_threshold = 2;

  // --- lint subcommand only --------------------------------------------
  bool list_rules = false;
  bool lint_trace = false;      // also run a batch and lint its trace
  std::string sarif_path;       // "-" = stdout
};

void usage() {
  std::puts(
      "coeffctl — run a CoEfficient/FSPEC/HOSA scheduling experiment\n"
      "\n"
      "  --scheme coefficient|fspec|hosa   scheduling scheme (default: coefficient)\n"
      "  --workload bbw|acc|apps|synthetic built-in static workload (default: bbw)\n"
      "  --statics FILE.csv                load static messages from CSV instead\n"
      "  --dynamics FILE.csv               load dynamic messages from CSV\n"
      "  --messages N                      synthetic static message count (default: 100)\n"
      "  --minislots N                     dynamic segment size (default: per workload)\n"
      "  --ber X                           bit error rate (default: 1e-7)\n"
      "  --sil 1..4                        IEC 61508 reliability goal (default: 3)\n"
      "  --window-ms N                     batch window (default: 1000)\n"
      "  --seed N                          RNG seed (default: 42)\n"
      "  --burst N                         aperiodic burst size; 1 = periodic (default)\n"
      "  --drain                           running-time mode (drain the whole batch)\n"
      "  --no-dynamics                     statics only\n"
      "  --engine compiled|interpreted     cycle-walk engine (default: compiled;\n"
      "                                    interpreted is the slot-by-slot reference,\n"
      "                                    results are byte-identical either way)\n"
      "  --fault-model iid|gilbert-elliott|common-mode|iid-counter\n"
      "                                    channel fault physics (default: iid at --ber;\n"
      "                                    iid-counter = counter-based Philox draws,\n"
      "                                    order-independent, same statistics as iid)\n"
      "  --ge-p-gb X / --ge-p-bg X         Gilbert-Elliott burst entry/exit probability\n"
      "  --ge-ber-good X / --ge-ber-bad X  Gilbert-Elliott per-state BERs\n"
      "  --common-fraction X               common-mode share of fault events [0,1]\n"
      "  --ber-step-ms N --ber-step X      step the wire BER to X at N ms (drift)\n"
      "  --ber-step2-ms N --ber-step2 X    second BER step (burst: up then back down)\n"
      "  --monitor                         runtime reliability monitor + online re-plan\n"
      "  --monitor-window N                monitor window in cycles (default: 200)\n"
      "  --monitor-factor X                drift trigger factor (default: 5)\n"
      "  --monitor-cooldown N              re-plan cooldown in cycles (default: 100)\n"
      "  --mode-policy SPEC                mixed-criticality mode-change protocol\n"
      "                                    (needs --monitor): preset off|conservative|\n"
      "                                    aggressive and/or key=value pairs enter-l1,\n"
      "                                    enter-l2, exit, dwell, recovery, burst,\n"
      "                                    window, backlog (e.g. 'aggressive,dwell=10')\n"
      "  --criticality SPEC                ASIL-style levels: static=high,dyn=low and\n"
      "                                    per-id overrides like 7=medium\n"
      "  --power                           per-node DVFS/DPM energy accounting\n"
      "  --crash NODE:START_MS:END_MS      scheduled ECU crash/restart (repeatable)\n"
      "  --blackout A|B:START_MS:END_MS    scheduled channel blackout (repeatable)\n"
      "  --babble NODE:SLOT:START_MS:END_MS[:A|B]\n"
      "                                    babbling-idiot slot jam (both channels\n"
      "                                    unless one is named; repeatable)\n"
      "  --drift NODE:START_MS:END_MS:PPM  clock-drift excursion window (repeatable)\n"
      "  --crash-rate X                    stochastic crashes/s over the window\n"
      "  --crash-mttr-ms N                 mean time to repair (default: 50)\n"
      "  --outage-rate X                   stochastic channel outages/s\n"
      "  --outage-ms N                     mean outage length (default: 5)\n"
      "  --vote K                          k-replica majority voting (odd, >= 3)\n"
      "  --silent-detect                   flag silent nodes + re-plan membership\n"
      "  --silent-threshold N              consecutive silent cycles (default: 2)\n"
      "  --jobs N                          sweep workers (default: 1; 0 = COEFF_JOBS\n"
      "                                    env var, else hardware concurrency)\n"
      "  --sweep-json PATH                 write per-cell wall-time report\n"
      "  --help                            this text\n"
      "\n"
      "coeffctl lint [options] — static analysis instead of a run\n"
      "  accepts the workload/cluster options above, plus:\n"
      "  --trace                           also run one batch and lint the trace\n"
      "  --sarif PATH                      write a SARIF 2.1.0 report ('-' = stdout)\n"
      "  --list-rules                      print the rule catalog and exit\n"
      "  exit status: 0 clean, 1 error-severity diagnostics, 2 usage error\n"
      "\n"
      "coeffctl analyze --prob [options] — probabilistic WCRT verification\n"
      "  (see coeffctl analyze --help)\n"
      "\n"
      "coeffctl campaign run|resume|status|report — crash-safe scenario sweeps\n"
      "  (see coeffctl campaign --help)");
}

void analyze_usage() {
  std::puts(
      "coeffctl analyze --prob — analytic P(deadline miss) verification "
      "(DESIGN.md §14)\n"
      "\n"
      "Builds each static message's response-time distribution under the\n"
      "configured fault model (retransmission-count convolution through\n"
      "slack-stealing interference) and reports the per-message / per-SAE-\n"
      "class P(miss) envelope plus the analysis.* lint rules.\n"
      "\n"
      "  accepts the workload/cluster/fault-model options of a plain run\n"
      "  (--scheme, --workload, --ber, --fault-model, --sil, ...), plus:\n"
      "  --prob                  run the probabilistic pass (required)\n"
      "  --json                  machine-readable result instead of text\n"
      "  --sarif PATH            write lint findings as SARIF 2.1.0 ('-' = stdout)\n"
      "  --campaign DIR          cross-check a finished campaign's measured\n"
      "                          miss ratios against the analytic envelope\n"
      "  --quantum-us N          Pmf quantization step (default: 50)\n"
      "  --max-bins N            Pmf grid size (default: 4096)\n"
      "  --no-dyn                skip the dynamic-segment pass (DESIGN.md §15)\n"
      "  --dyn-max-slips N       cycle-slip cap of the nominal dynamic\n"
      "                          response model (default: 64)\n"
      "  exit status: 0 clean, 1 error-severity diagnostics, 2 usage error");
}

/// The single usage line every bad-invocation path prints (exit 2).
void usage_hint() {
  std::fputs(
      "usage: coeffctl [options] | coeffctl lint [options] | "
      "coeffctl analyze --prob [options] | "
      "coeffctl campaign run|resume|status|report [options] "
      "(try --help)\n",
      stderr);
}

void campaign_usage() {
  std::puts(
      "coeffctl campaign — crash-safe sharded scenario campaigns (DESIGN.md §13)\n"
      "\n"
      "  coeffctl campaign run --dir DIR [options]   start a fresh campaign\n"
      "  coeffctl campaign resume --dir DIR          continue after a crash/kill\n"
      "  coeffctl campaign status --dir DIR          progress + consistency lint\n"
      "  coeffctl campaign report --dir DIR [--json] aggregate the result rows\n"
      "\n"
      "run options:\n"
      "  --cells N               scenario cells to generate (default: 256)\n"
      "  --seed N                campaign seed; cell seeds derive from it (42)\n"
      "  --shards N              worker shards (default: 4)\n"
      "  --isolation process|thread\n"
      "                          process = forked workers, kill-based watchdog\n"
      "                          (default); thread = in-process pool\n"
      "  --name S                campaign name recorded in the manifest\n"
      "  --watchdog-ms N         per-cell budget before the shard is killed\n"
      "                          and the cell retried (default: 30000)\n"
      "  --max-attempts N        attempts before a cell is quarantined (2)\n"
      "  --backoff-ms N          respawn backoff base, doubles per failure (200)\n"
      "  --window-ms N           batch window per cell (default: 100)\n"
      "  --schemes a,b,c         scheme mix: coefficient,fspec,hosa (all)\n"
      "  --min-nodes/--max-nodes N    cluster size range (2..64)\n"
      "  --min-util/--max-util X      static utilization range (0.15..0.70)\n"
      "  --criticality           mixed-criticality axis: per-cell drawn mode\n"
      "                          policy + criticality levels + power model\n"
      "  --no-fsync              skip per-record fsync (tests only)\n"
      "\n"
      "report options:\n"
      "  --json                  machine-readable aggregate\n"
      "  --out PATH              write the report to PATH instead of stdout\n"
      "  --analyze               cross-check measured miss ratios against the\n"
      "                          analytic P(miss) envelope (coeffctl analyze)\n"
      "\n"
      "exit status: 0 ok, 1 campaign/lint failure, 2 usage error");
}

/// Split a colon-separated fault spec ("1:10:30" or "A:5:20").
std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : spec) {
    if (c == ':') {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

std::optional<flexray::ChannelId> parse_channel(const std::string& name) {
  if (name == "A" || name == "a") return flexray::ChannelId::kA;
  if (name == "B" || name == "b") return flexray::ChannelId::kB;
  return std::nullopt;
}

[[noreturn]] void bad_spec(const char* flag, const std::string& spec) {
  std::fprintf(stderr, "coeffctl: bad %s spec '%s' (see --help)\n", flag,
               spec.c_str());
  std::exit(2);
}

void parse_crash_spec(const std::string& spec, CliOptions& opt) {
  const auto parts = split_spec(spec);
  if (parts.size() != 3) bad_spec("--crash", spec);
  opt.structural.crashes.push_back({units::NodeId{std::atoi(parts[0].c_str())},
                                    sim::millis(std::atoll(parts[1].c_str())),
                                    sim::millis(std::atoll(parts[2].c_str()))});
}

void parse_blackout_spec(const std::string& spec, CliOptions& opt) {
  const auto parts = split_spec(spec);
  const auto channel = parts.empty() ? std::nullopt : parse_channel(parts[0]);
  if (parts.size() != 3 || !channel.has_value()) bad_spec("--blackout", spec);
  opt.structural.blackouts.push_back(
      {*channel, sim::millis(std::atoll(parts[1].c_str())),
       sim::millis(std::atoll(parts[2].c_str()))});
}

void parse_babble_spec(const std::string& spec, CliOptions& opt) {
  const auto parts = split_spec(spec);
  if (parts.size() != 4 && parts.size() != 5) bad_spec("--babble", spec);
  fault::BabbleWindow babble;
  babble.babbler = units::NodeId{std::atoi(parts[0].c_str())};
  babble.slot = units::SlotId{std::atoi(parts[1].c_str())};
  babble.at = sim::millis(std::atoll(parts[2].c_str()));
  babble.until = sim::millis(std::atoll(parts[3].c_str()));
  if (parts.size() == 5) {
    babble.channel = parse_channel(parts[4]);
    if (!babble.channel.has_value()) bad_spec("--babble", spec);
  }
  opt.structural.babbles.push_back(babble);
}

void parse_drift_spec(const std::string& spec, CliOptions& opt) {
  const auto parts = split_spec(spec);
  if (parts.size() != 4) bad_spec("--drift", spec);
  opt.structural.drifts.push_back({units::NodeId{std::atoi(parts[0].c_str())},
                                   sim::millis(std::atoll(parts[1].c_str())),
                                   sim::millis(std::atoll(parts[2].c_str())),
                                   std::atof(parts[3].c_str())});
}

bool parse(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "coeffctl: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else if (arg == "--scheme") {
      opt.scheme = next("--scheme");
    } else if (arg == "--workload") {
      opt.workload = next("--workload");
    } else if (arg == "--statics") {
      opt.statics_csv = next("--statics");
    } else if (arg == "--dynamics") {
      opt.dynamics_csv = next("--dynamics");
    } else if (arg == "--messages") {
      opt.messages = std::atoi(next("--messages"));
    } else if (arg == "--minislots") {
      opt.minislots = std::atoll(next("--minislots"));
    } else if (arg == "--ber") {
      opt.ber = std::atof(next("--ber"));
    } else if (arg == "--sil") {
      opt.sil = std::atoi(next("--sil"));
    } else if (arg == "--window-ms") {
      opt.window_ms = std::atoll(next("--window-ms"));
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (arg == "--burst") {
      opt.burst = std::atoi(next("--burst"));
    } else if (arg == "--drain") {
      opt.drain = true;
    } else if (arg == "--no-dynamics") {
      opt.no_dynamics = true;
    } else if (arg == "--engine") {
      const std::string name = next("--engine");
      if (name == "compiled") {
        opt.engine = flexray::EngineMode::kCompiled;
      } else if (name == "interpreted") {
        opt.engine = flexray::EngineMode::kInterpreted;
      } else {
        std::fprintf(stderr, "coeffctl: unknown engine '%s'\n", name.c_str());
        std::exit(2);
      }
    } else if (arg == "--jobs") {
      opt.jobs = std::atoi(next("--jobs"));
    } else if (arg == "--sweep-json") {
      opt.sweep_json = next("--sweep-json");
    } else if (arg == "--fault-model") {
      const char* name = next("--fault-model");
      const auto kind = fault::parse_fault_model_kind(name);
      if (!kind.has_value()) {
        std::fprintf(stderr, "coeffctl: unknown fault model '%s'\n", name);
        std::exit(2);
      }
      opt.fault_model.kind = *kind;
    } else if (arg == "--ge-p-gb") {
      opt.fault_model.gilbert_elliott.p_good_to_bad = std::atof(next(arg.c_str()));
    } else if (arg == "--ge-p-bg") {
      opt.fault_model.gilbert_elliott.p_bad_to_good = std::atof(next(arg.c_str()));
    } else if (arg == "--ge-ber-good") {
      opt.fault_model.gilbert_elliott.ber_good = std::atof(next(arg.c_str()));
    } else if (arg == "--ge-ber-bad") {
      opt.fault_model.gilbert_elliott.ber_bad = std::atof(next(arg.c_str()));
    } else if (arg == "--common-fraction") {
      opt.fault_model.common_fraction = std::atof(next(arg.c_str()));
    } else if (arg == "--ber-step-ms") {
      opt.ber_step_ms = std::atoll(next(arg.c_str()));
    } else if (arg == "--ber-step") {
      opt.ber_step = std::atof(next(arg.c_str()));
    } else if (arg == "--ber-step2-ms") {
      opt.ber_step2_ms = std::atoll(next(arg.c_str()));
    } else if (arg == "--ber-step2") {
      opt.ber_step2 = std::atof(next(arg.c_str()));
    } else if (arg == "--mode-policy") {
      opt.mode_policy = next(arg.c_str());
    } else if (arg == "--criticality") {
      opt.criticality = next(arg.c_str());
    } else if (arg == "--power") {
      opt.power = true;
    } else if (arg == "--monitor") {
      opt.monitor = true;
    } else if (arg == "--monitor-window") {
      opt.monitor_opt.window_cycles = std::atoi(next(arg.c_str()));
    } else if (arg == "--monitor-factor") {
      opt.monitor_opt.trigger_factor = std::atof(next(arg.c_str()));
    } else if (arg == "--monitor-cooldown") {
      opt.monitor_opt.cooldown_cycles = std::atoi(next(arg.c_str()));
    } else if (arg == "--crash") {
      parse_crash_spec(next(arg.c_str()), opt);
    } else if (arg == "--blackout") {
      parse_blackout_spec(next(arg.c_str()), opt);
    } else if (arg == "--babble") {
      parse_babble_spec(next(arg.c_str()), opt);
    } else if (arg == "--drift") {
      parse_drift_spec(next(arg.c_str()), opt);
    } else if (arg == "--crash-rate") {
      opt.crash_rate = std::atof(next(arg.c_str()));
    } else if (arg == "--crash-mttr-ms") {
      opt.crash_mttr_ms = std::atoll(next(arg.c_str()));
    } else if (arg == "--outage-rate") {
      opt.outage_rate = std::atof(next(arg.c_str()));
    } else if (arg == "--outage-ms") {
      opt.outage_ms = std::atoll(next(arg.c_str()));
    } else if (arg == "--vote") {
      opt.vote = std::atoi(next(arg.c_str()));
    } else if (arg == "--silent-detect") {
      opt.silent_detect = true;
    } else if (arg == "--silent-threshold") {
      opt.silent_threshold = std::atoi(next(arg.c_str()));
    } else if (arg == "--trace") {
      opt.lint_trace = true;
    } else if (arg == "--sarif") {
      opt.sarif_path = next("--sarif");
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else {
      std::fprintf(stderr, "coeffctl: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Assemble the cluster + message sets + fault/monitor settings from the
/// CLI options (shared by the run and lint paths). Throws on bad input;
/// returns false only for an unknown workload/scheme name.
bool build_config(const CliOptions& opt, core::ExperimentConfig& config) {
    // Cluster + static workload.
    if (!opt.statics_csv.empty()) {
      // A matrix file may carry both kinds; keep the static rows here.
      config.statics =
          net::load_csv(opt.statics_csv).of_kind(net::MessageKind::kStatic);
      // Pick a cluster whose cycle divides every period: the 5 ms
      // dynamic-suite cycle when possible, else the 1 ms app cycle.
      bool fits_5ms = true;
      for (const auto& m : config.statics.messages()) {
        if (m.period % sim::millis(5) != sim::Time::zero()) fits_5ms = false;
      }
      config.cluster =
          fits_5ms ? core::paper_cluster_dynamic_suite(
                         opt.minislots > 0 ? opt.minislots : 50)
                   : core::paper_cluster_apps(
                         opt.minislots > 0 ? opt.minislots : 25);
    } else if (opt.workload == "bbw" || opt.workload == "acc" ||
               opt.workload == "apps") {
      config.cluster = core::paper_cluster_apps(
          opt.minislots > 0 ? opt.minislots : 25);
      config.statics = opt.workload == "bbw" ? net::brake_by_wire()
                       : opt.workload == "acc"
                           ? net::adaptive_cruise()
                           : net::brake_by_wire().merged_with(
                                 net::adaptive_cruise());
    } else if (opt.workload == "synthetic") {
      config.cluster = core::paper_cluster_dynamic_suite(
          opt.minislots > 0 ? opt.minislots : 50);
      sim::Rng rng(opt.seed);
      net::SyntheticStaticOptions statics;
      statics.count = static_cast<std::size_t>(opt.messages);
      config.statics = net::synthetic_static(statics, rng);
    } else {
      std::fprintf(stderr, "coeffctl: unknown workload '%s'\n",
                   opt.workload.c_str());
      return false;
    }

    // Dynamic workload.
    if (!opt.dynamics_csv.empty()) {
      config.dynamics =
          net::load_csv(opt.dynamics_csv).of_kind(net::MessageKind::kDynamic);
    } else if (!opt.no_dynamics) {
      sim::Rng rng(opt.seed ^ 0x5DEECE66DULL);
      net::SaeAperiodicOptions sae;
      sae.static_slots =
          static_cast<int>(config.cluster.g_number_of_static_slots);
      config.dynamics = net::sae_aperiodic(sae, rng);
    }
    if (opt.burst > 1) {
      config.arrivals.process = net::ArrivalProcess::kBursty;
      config.arrivals.burst = opt.burst;
    }

    config.ber = opt.ber;
    config.sil = static_cast<fault::Sil>(opt.sil);
    config.batch_window = sim::millis(opt.window_ms);
    config.seed = opt.seed;
    config.drain_batch = opt.drain;
    config.engine = opt.engine;
    config.fault_model = opt.fault_model;
    if (opt.ber_step_ms > 0 && opt.ber_step >= 0.0) {
      config.ber_step_at = sim::millis(opt.ber_step_ms);
      config.ber_step = opt.ber_step;
    }
    if (opt.ber_step2_ms > 0 && opt.ber_step2 >= 0.0) {
      config.ber_step2_at = sim::millis(opt.ber_step2_ms);
      config.ber_step2 = opt.ber_step2;
    }
    config.enable_monitor = opt.monitor;
    config.monitor = opt.monitor_opt;

    // Mixed-criticality modes + energy (DESIGN.md §16).
    if (!opt.mode_policy.empty()) {
      const auto policy = sched::parse_mode_policy(opt.mode_policy);
      if (!policy.has_value()) {
        std::fprintf(stderr, "coeffctl: bad --mode-policy '%s'\n",
                     opt.mode_policy.c_str());
        return false;
      }
      config.mode_policy = *policy;
    }
    if (!opt.criticality.empty()) {
      const auto crit = sched::parse_criticality_spec(opt.criticality);
      if (!crit.has_value()) {
        std::fprintf(stderr, "coeffctl: bad --criticality '%s'\n",
                     opt.criticality.c_str());
        return false;
      }
      config.statics = sched::with_criticality(config.statics, *crit);
      config.dynamics = sched::with_criticality(config.dynamics, *crit);
    }
    config.power.enabled = opt.power;

    // Structural fault domain: scheduled windows pass through verbatim;
    // stochastic processes run over the batch window on this cluster.
    config.structural = opt.structural;
    if (opt.crash_rate > 0.0) {
      config.structural.stochastic_crashes.crashes_per_second = opt.crash_rate;
      config.structural.stochastic_crashes.mean_time_to_repair =
          sim::millis(opt.crash_mttr_ms);
      config.structural.stochastic_crashes.horizon = config.batch_window;
      config.structural.stochastic_crashes.num_nodes =
          static_cast<int>(config.cluster.num_nodes);
    }
    if (opt.outage_rate > 0.0) {
      config.structural.stochastic_blackouts.outages_per_second =
          opt.outage_rate;
      config.structural.stochastic_blackouts.mean_outage =
          sim::millis(opt.outage_ms);
      config.structural.stochastic_blackouts.horizon = config.batch_window;
    }
    config.vote_replicas = opt.vote;
    config.silent_node_detection = opt.silent_detect;
    config.silent_cycle_threshold = opt.silent_threshold;
    return true;
}

bool parse_scheme(const CliOptions& opt, core::SchemeKind& scheme) {
  if (opt.scheme == "coefficient") {
    scheme = core::SchemeKind::kCoEfficient;
  } else if (opt.scheme == "fspec") {
    scheme = core::SchemeKind::kFspec;
  } else if (opt.scheme == "hosa") {
    scheme = core::SchemeKind::kHosa;
  } else {
    std::fprintf(stderr, "coeffctl: unknown scheme '%s'\n",
                 opt.scheme.c_str());
    return false;
  }
  return true;
}

/// `coeffctl lint`: run the offline analyzer over the configured
/// workload (and optionally one recorded batch) instead of reporting
/// metrics. Exit status 0 = clean, 1 = error diagnostics, 2 = usage.
int lint_main(int argc, char** argv) {
  CliOptions opt;
  if (!parse(argc, argv, opt)) {
    usage_hint();
    return 2;
  }
  if (opt.list_rules) {
    std::fputs(analysis::render_rule_list().c_str(), stdout);
    return 0;
  }

  try {
    core::ExperimentConfig config;
    core::SchemeKind scheme;
    if (!build_config(opt, config) || !parse_scheme(opt, scheme)) return 2;

    const double rho = config.rho > 0.0
                           ? config.rho
                           : fault::reliability_goal(config.sil, config.u);

    analysis::Report report;

    // The schedule table and retransmission plan under analysis. A build
    // that throws is itself a finding (the structural rules will name
    // the root cause; the catch keeps a diagnostic even if they don't).
    std::optional<sched::StaticScheduleTable> table;
    try {
      table = sched::StaticScheduleTable::build(config.statics,
                                                config.cluster);
    } catch (const std::exception& e) {
      report.add("schedule.message-set-valid",
                 std::string("schedule table: ") + e.what());
    }
    fault::SolverOptions solver;
    solver.ber = config.ber;
    solver.rho = rho;
    solver.u = config.u;
    solver.max_copies_per_message = config.max_copies;
    const fault::RetransmissionPlan plan =
        fault::solve_differentiated(config.statics, solver);

    analysis::ScheduleLintInput input;
    input.cluster = &config.cluster;
    input.statics = &config.statics;
    input.dynamics = &config.dynamics;
    input.table = table.has_value() ? &*table : nullptr;
    input.plan = &plan;
    input.ber = config.ber;
    input.rho = rho;
    input.u = config.u;
    report.merge(analysis::lint_schedule(input));

    // --trace: record one batch with the chosen scheme and check the
    // protocol-conformance rules over what actually went on the wire.
    if (opt.lint_trace) {
      sim::Trace trace;
      config.trace = &trace;
      (void)core::run_experiment(config, scheme);
      analysis::TraceLintInput tin;
      tin.trace = &trace;
      tin.cluster = &config.cluster;
      tin.discipline = scheme == core::SchemeKind::kCoEfficient
                           ? analysis::RetxDiscipline::kPlanned
                       : scheme == core::SchemeKind::kFspec
                           ? analysis::RetxDiscipline::kRounds
                           : analysis::RetxDiscipline::kMirrored;
      tin.initial_degraded = plan.degraded;
      report.merge(analysis::lint_trace(tin));
    }

    std::printf("%s", report.render_text().c_str());
    std::printf("coeff-lint: %zu error(s), %zu warning(s), %zu note(s) over "
                "%zu rules [%zu static + %zu dynamic messages, %s]\n",
                report.count(analysis::Severity::kError),
                report.count(analysis::Severity::kWarning),
                report.count(analysis::Severity::kNote),
                analysis::rule_catalog().size(), config.statics.size(),
                config.dynamics.size(),
                flexray::describe(config.cluster).c_str());
    if (!opt.sarif_path.empty()) {
      const std::string sarif = report.render_sarif();
      if (opt.sarif_path == "-") {
        std::printf("%s\n", sarif.c_str());
      } else {
        std::ofstream out(opt.sarif_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "coeffctl: cannot write '%s'\n",
                       opt.sarif_path.c_str());
          return 2;
        }
        out << sarif;
      }
    }
    return report.has_errors() ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "coeffctl: %s\n", e.what());
    return 2;
  }
}

// --- analyze subcommand --------------------------------------------------

/// `coeffctl analyze --prob`: the design-time probabilistic WCRT
/// verifier. Exit status mirrors lint: 0 clean, 1 error diagnostics,
/// 2 usage.
int analyze_main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  const analysis::ProbCliParse cli = analysis::parse_prob_cli(args);
  if (!cli.ok()) {
    std::fprintf(stderr, "coeffctl: %s\n", cli.error.c_str());
    usage_hint();
    return 2;
  }
  if (cli.options.help) {
    analyze_usage();
    return 0;
  }

  // Forward the workload/cluster/fault tokens to the base parser.
  std::vector<char*> base_argv;
  base_argv.push_back(argv[0]);  // program name slot (parse skips it)
  std::vector<std::string> passthrough = cli.passthrough;
  for (std::string& token : passthrough) base_argv.push_back(token.data());
  CliOptions opt;
  if (!parse(static_cast<int>(base_argv.size()), base_argv.data(), opt)) {
    usage_hint();
    return 2;
  }

  try {
    core::ExperimentConfig config;
    core::SchemeKind scheme;
    if (!build_config(opt, config) || !parse_scheme(opt, scheme)) return 2;

    analysis::ProbWcrtOptions prob_options;
    prob_options.quantum = sim::micros(cli.options.quantum_us);
    prob_options.max_bins =
        static_cast<std::size_t>(cli.options.max_bins);
    const auto setup =
        campaign::make_prob_setup(config, scheme, prob_options);
    const analysis::ProbWcrtResult result =
        analysis::analyze_prob_wcrt(setup->input);

    // Dynamic-segment pass (DESIGN.md §15): runs whenever the workload
    // carries dynamic messages, unless --no-dyn opts out.
    const bool run_dyn = setup->has_dynamics && !cli.options.no_dyn;
    analysis::DynWcrtResult dyn_result;
    if (run_dyn) {
      setup->dyn_input.max_slips =
          static_cast<int>(cli.options.dyn_max_slips);
      dyn_result = analysis::analyze_dyn_wcrt(setup->dyn_input);
    }

    if (cli.options.json) {
      std::string json = analysis::render_prob_json(setup->input, result);
      if (run_dyn) {
        // Graft the dynamic sections into the top-level object.
        json.pop_back();
        json += ",\"dynamic\":" +
                analysis::render_dyn_json(setup->dyn_input, dyn_result);
        json += ",\"end_to_end_classes\":" +
                analysis::render_end_to_end_json(analysis::merge_class_envelopes(
                    result.classes, dyn_result.classes));
        json += '}';
      }
      std::printf("%s\n", json.c_str());
    } else {
      std::printf("%s",
                  analysis::render_prob_text(setup->input, result).c_str());
      if (run_dyn) {
        std::printf(
            "%s",
            analysis::render_dyn_text(setup->dyn_input, dyn_result).c_str());
        std::printf("%s", analysis::render_end_to_end_text(
                              analysis::merge_class_envelopes(
                                  result.classes, dyn_result.classes))
                              .c_str());
      }
    }

    analysis::Report report = analysis::lint_prob(setup->input, result);
    if (run_dyn) {
      report.merge(analysis::lint_dyn(setup->dyn_input, dyn_result));
    }

    if (!cli.options.campaign_dir.empty()) {
      const auto load = campaign::load_manifest(
          campaign::manifest_path(cli.options.campaign_dir));
      if (!load.ok) {
        std::fprintf(stderr, "coeffctl: %s\n", load.error.c_str());
        return 2;
      }
      const campaign::ResultScan scan =
          campaign::scan_results(cli.options.campaign_dir, load.manifest);
      campaign::CrossCheckOptions cross;
      cross.prob = prob_options;
      const campaign::CrossCheckSummary summary = campaign::cross_check_prob(
          load.manifest, scan.rows, cross, report);
      std::printf("cross-check: %zu/%zu eligible cell(s) checked, "
                  "%zu diverged | dynamic %zu/%zu checked, %zu diverged\n",
                  summary.checked, summary.eligible, summary.diverged,
                  summary.dyn_checked, summary.dyn_eligible,
                  summary.dyn_diverged);
    }

    if (!cli.options.json) {
      std::printf("%s", report.render_text().c_str());
      std::printf("coeff-analyze: %zu error(s), %zu warning(s), %zu note(s) "
                  "[%s, %zu static + %zu dynamic messages]\n",
                  report.count(analysis::Severity::kError),
                  report.count(analysis::Severity::kWarning),
                  report.count(analysis::Severity::kNote),
                  analysis::to_string(setup->input.discipline),
                  config.statics.size(),
                  run_dyn ? config.dynamics.size() : std::size_t{0});
    }
    if (!cli.options.sarif_path.empty()) {
      const std::string sarif = report.render_sarif();
      if (cli.options.sarif_path == "-") {
        std::printf("%s\n", sarif.c_str());
      } else {
        std::ofstream out(cli.options.sarif_path, std::ios::binary);
        if (!out) {
          std::fprintf(stderr, "coeffctl: cannot write '%s'\n",
                       cli.options.sarif_path.c_str());
          return 2;
        }
        out << sarif;
      }
    }
    return report.has_errors() ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "coeffctl: %s\n", e.what());
    return 2;
  }
}

// --- campaign subcommand -------------------------------------------------

struct CampaignCli {
  std::string verb;
  std::string dir;
  std::string out_path;
  bool json = false;
  bool durable = true;
  bool analyze = false;  // report: cross-check vs the analytic envelope
  campaign::CampaignManifest manifest;
};

/// Parse the `campaign <verb>` flags. Returns false (after printing the
/// offending flag) on any usage error; --help prints and exits 0.
bool parse_campaign(int argc, char** argv, CampaignCli& cli) {
  campaign::CampaignManifest& m = cli.manifest;
  campaign::ScenarioDistribution& d = m.distribution;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "coeffctl: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      campaign_usage();
      std::exit(0);
    } else if (cli.verb.empty() && !arg.empty() && arg[0] != '-') {
      if (arg != "run" && arg != "resume" && arg != "status" &&
          arg != "report") {
        std::fprintf(stderr, "coeffctl: unknown campaign verb '%s'\n",
                     arg.c_str());
        return false;
      }
      cli.verb = arg;
    } else if (arg == "--dir") {
      cli.dir = next("--dir");
    } else if (arg == "--cells") {
      m.cells = std::atoll(next("--cells"));
    } else if (arg == "--seed") {
      m.seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else if (arg == "--shards") {
      m.shards = std::atoi(next("--shards"));
    } else if (arg == "--name") {
      m.name = next("--name");
    } else if (arg == "--isolation") {
      const std::string name = next("--isolation");
      if (name == "process") {
        m.isolation = campaign::Isolation::kProcess;
      } else if (name == "thread") {
        m.isolation = campaign::Isolation::kThread;
      } else {
        std::fprintf(stderr, "coeffctl: unknown isolation '%s'\n",
                     name.c_str());
        return false;
      }
    } else if (arg == "--watchdog-ms") {
      m.watchdog_ms = std::atoll(next("--watchdog-ms"));
    } else if (arg == "--max-attempts") {
      m.max_attempts = std::atoi(next("--max-attempts"));
    } else if (arg == "--backoff-ms") {
      m.backoff_base_ms = std::atoll(next("--backoff-ms"));
    } else if (arg == "--window-ms") {
      d.window_ms = std::atoll(next("--window-ms"));
    } else if (arg == "--schemes") {
      d.schemes.clear();
      const std::string list = next("--schemes");
      std::size_t at = 0;
      while (at <= list.size()) {
        auto comma = list.find(',', at);
        if (comma == std::string::npos) comma = list.size();
        const auto scheme = campaign::parse_scheme_tag(
            std::string_view(list).substr(at, comma - at));
        if (!scheme.has_value()) {
          std::fprintf(stderr, "coeffctl: unknown scheme in --schemes '%s'\n",
                       list.c_str());
          return false;
        }
        d.schemes.push_back(*scheme);
        if (comma == list.size()) break;
        at = comma + 1;
      }
    } else if (arg == "--min-nodes") {
      d.min_nodes = std::atoi(next("--min-nodes"));
    } else if (arg == "--max-nodes") {
      d.max_nodes = std::atoi(next("--max-nodes"));
    } else if (arg == "--min-util") {
      d.min_util = std::atof(next("--min-util"));
    } else if (arg == "--max-util") {
      d.max_util = std::atof(next("--max-util"));
    } else if (arg == "--criticality") {
      d.criticality = true;
    } else if (arg == "--no-fsync") {
      cli.durable = false;
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--analyze") {
      cli.analyze = true;
    } else if (arg == "--out") {
      cli.out_path = next("--out");
    } else {
      std::fprintf(stderr, "coeffctl: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  if (cli.verb.empty()) {
    std::fprintf(stderr,
                 "coeffctl: campaign needs a verb (run|resume|status|report)\n");
    return false;
  }
  if (cli.dir.empty()) {
    std::fprintf(stderr, "coeffctl: campaign %s needs --dir\n",
                 cli.verb.c_str());
    return false;
  }
  return true;
}

campaign::CampaignOptions campaign_options(const CampaignCli& cli) {
  campaign::CampaignOptions options;
  options.dir = cli.dir;
  options.manifest = cli.manifest;
  options.durable = cli.durable;
  options.log = [](const std::string& line) {
    std::fprintf(stderr, "%s\n", line.c_str());
  };
  // Deterministic failure-injection hooks for tests and the CI smoke.
  options.hang_cells = campaign::CampaignRunner::parse_cell_list(
      std::getenv("COEFF_CAMPAIGN_HANG_CELLS"));
  options.crash_cells = campaign::CampaignRunner::parse_cell_list(
      std::getenv("COEFF_CAMPAIGN_CRASH_CELLS"));
  return options;
}

int campaign_outcome_main(const campaign::CampaignOutcome& outcome) {
  if (!outcome.ok) {
    std::fprintf(stderr, "coeffctl: campaign failed: %s\n",
                 outcome.error.c_str());
    return 1;
  }
  std::printf("campaign: %lld/%lld cells done, %lld quarantined, "
              "%lld respawns%s\n",
              static_cast<long long>(outcome.completed),
              static_cast<long long>(outcome.total_cells),
              static_cast<long long>(outcome.quarantined),
              static_cast<long long>(outcome.respawns),
              outcome.degraded ? " (degraded: result detail shed)" : "");
  return 0;
}

int campaign_status_main(const CampaignCli& cli) {
  const auto load =
      campaign::load_manifest(campaign::manifest_path(cli.dir));
  if (!load.ok) {
    std::fprintf(stderr, "coeffctl: %s\n", load.error.c_str());
    return 1;
  }
  const campaign::CampaignManifest& m = load.manifest;
  std::int64_t done = 0;
  std::int64_t quarantined = 0;
  for (int shard = 0; shard < m.shards; ++shard) {
    const auto ckpt = campaign::load_checkpoint(
        campaign::shard_checkpoint_path(cli.dir, shard));
    if (!ckpt.ok) continue;
    for (const auto& record : ckpt.records) {
      if (record.kind == campaign::CheckpointRecordKind::kDone) ++done;
      if (record.kind == campaign::CheckpointRecordKind::kQuarantine) {
        ++quarantined;
      }
    }
  }
  std::printf("campaign : %s\nstatus   : %s\nprogress : %lld/%lld cells "
              "(%lld quarantined)\nshards   : %d (%s isolation)\nseed     "
              ": %llu\n",
              m.name.empty() ? "(unnamed)" : m.name.c_str(),
              m.status.c_str(), static_cast<long long>(done + quarantined),
              static_cast<long long>(m.cells),
              static_cast<long long>(quarantined), m.shards,
              campaign::to_string(m.isolation),
              static_cast<unsigned long long>(m.seed));
  const analysis::Report report = campaign::lint_campaign(cli.dir);
  std::printf("%s", report.render_text().c_str());
  std::printf("consistency: %zu error(s), %zu warning(s)\n",
              report.count(analysis::Severity::kError),
              report.count(analysis::Severity::kWarning));
  return report.has_errors() ? 1 : 0;
}

int campaign_report_main(const CampaignCli& cli) {
  const auto load =
      campaign::load_manifest(campaign::manifest_path(cli.dir));
  if (!load.ok) {
    std::fprintf(stderr, "coeffctl: %s\n", load.error.c_str());
    return 1;
  }
  const campaign::ResultScan scan =
      campaign::scan_results(cli.dir, load.manifest);
  for (const std::string& error : scan.errors) {
    std::fprintf(stderr, "coeffctl: %s\n", error.c_str());
  }
  const campaign::CampaignAggregate aggregate =
      campaign::aggregate_rows(scan.rows, load.manifest.cells);
  const std::string text =
      cli.json ? campaign::render_report_json(aggregate, load.manifest)
               : campaign::render_report_text(aggregate, load.manifest);
  if (cli.out_path.empty()) {
    std::printf("%s", text.c_str());
  } else {
    std::ofstream out(cli.out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "coeffctl: cannot write '%s'\n",
                   cli.out_path.c_str());
      return 1;
    }
    out << text;
  }
  if (cli.analyze) {
    analysis::Report report;
    const campaign::CrossCheckSummary summary = campaign::cross_check_prob(
        load.manifest, scan.rows, campaign::CrossCheckOptions{}, report);
    std::printf("cross-check: %zu/%zu eligible cell(s) checked, "
                "%zu diverged | dynamic %zu/%zu checked, %zu diverged\n",
                summary.checked, summary.eligible, summary.diverged,
                summary.dyn_checked, summary.dyn_eligible,
                summary.dyn_diverged);
    std::printf("%s", report.render_text().c_str());
    if (report.has_errors()) return 1;
  }
  return 0;
}

int campaign_main(int argc, char** argv) {
  CampaignCli cli;
  // CLI defaults tuned for interactive sweeps: a modest population with
  // the full scheme mix and short windows (the library defaults target
  // single-scheme overnight campaigns).
  cli.manifest.cells = 256;
  cli.manifest.distribution.window_ms = 100;
  cli.manifest.distribution.schemes = {core::SchemeKind::kCoEfficient,
                                       core::SchemeKind::kFspec,
                                       core::SchemeKind::kHosa};
  if (!parse_campaign(argc, argv, cli)) {
    usage_hint();
    return 2;
  }
  if (cli.verb == "status") return campaign_status_main(cli);
  if (cli.verb == "report") return campaign_report_main(cli);
  if (cli.verb == "run") {
    return campaign_outcome_main(
        campaign::CampaignRunner::run(campaign_options(cli)));
  }
  campaign::CampaignOptions overrides = campaign_options(cli);
  return campaign_outcome_main(
      campaign::CampaignRunner::resume(cli.dir, overrides));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "lint") == 0) {
    return lint_main(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "analyze") == 0) {
    return analyze_main(argc - 1, argv + 1);
  }
  if (argc >= 2 && std::strcmp(argv[1], "campaign") == 0) {
    return campaign_main(argc - 1, argv + 1);
  }
  if (argc >= 2 && argv[1][0] != '-') {
    std::fprintf(stderr, "coeffctl: unknown subcommand '%s'\n", argv[1]);
    usage_hint();
    return 2;
  }
  CliOptions opt;
  if (!parse(argc, argv, opt)) {
    usage_hint();
    return 2;
  }

  try {
    core::ExperimentConfig config;
    core::SchemeKind scheme;
    if (!build_config(opt, config) || !parse_scheme(opt, scheme)) return 2;

    fault::FaultModelConfig header_fm = config.fault_model;
    header_fm.ber = config.ber;  // mirror run_experiment's single-knob rule
    std::printf("scheme   : %s\ncluster  : %s\nworkload : %zu static + %zu "
                "dynamic messages\nfault    : %s seed=%llu%s\n",
                core::to_string(scheme),
                flexray::describe(config.cluster).c_str(),
                config.statics.size(), config.dynamics.size(),
                fault::describe(header_fm).c_str(),
                static_cast<unsigned long long>(config.seed),
                config.enable_monitor ? " monitor=on" : "");
    if (config.ber_step >= 0.0 && config.ber_step_at > sim::Time::zero()) {
      std::printf("drift    : ber -> %g at %s\n", config.ber_step,
                  sim::to_string(config.ber_step_at).c_str());
    }
    if (!config.structural.empty()) {
      config.structural.validate();
      std::printf("faults   : %s\n",
                  fault::NodeFaultModel(config.structural, config.seed)
                      .describe()
                      .c_str());
    }
    if (config.vote_replicas > 0) {
      std::printf("voting   : %d-replica majority\n", config.vote_replicas);
    }
    if (config.silent_node_detection) {
      std::printf("detect   : silent nodes after %d cycle(s)\n",
                  config.silent_cycle_threshold);
    }
    std::printf("\n");
    bench::BenchOptions sweep_opt;
    sweep_opt.jobs = opt.jobs;
    sweep_opt.sweep_json = opt.sweep_json;
    const auto report = bench::run_sweep(
        "coeffctl", {{config, scheme, core::to_string(scheme)}}, sweep_opt);
    const auto& result = report.cells.front().result;
    std::printf("%s", result.run.summary().c_str());
    std::printf("reliability: target=%.10f scheduled=%.10f\n",
                result.rho_target, result.reliability_scheduled);
    if (!result.drained) {
      std::printf("note: drain cap reached before the batch completed\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "coeffctl: %s\n", e.what());
    return 1;
  }
}
