#!/usr/bin/env python3
"""CI performance gate for the compiled cycle engine.

Re-runs bench/micro_cycle with the committed baseline's parameters and
fails when the compiled/interpreted throughput ratio of any gated cell
regresses more than the tolerance below the committed ratio.

Why ratios, not raw cycles/s: absolute throughput varies by machine,
but both engines run on the *same* machine in the same invocation, so
their ratio is machine-normalized — a CI runner half as fast as the
baseline box still reproduces the ratio. Why only walk-bound cells:
transmission-bound suites (the loaded baseline_comparison workload)
pay identical per-frame bookkeeping under both engines, so their ratio
saturates near 1x and its residual jitter is measurement noise, not an
engine signal (DESIGN.md section 12). Gating noise makes a flaky gate;
those cells are reported but only gated against the hard floor of 1.0x
minus the tolerance (the compiled engine must never be meaningfully
slower than the interpreted one).

Flake resistance: the workload window is fixed (the cycle count per
run is deterministic and verified identical across engines by
micro_cycle itself), each cell is the median of N repetitions, and the
gate compares medians-of-medians, never single runs.

Usage:
  tools/bench_gate.py --bench build/bench/micro_cycle \
      [--baseline bench/BENCH_cycle.json] [--tolerance 0.10]
      [--min-gated-ratio 1.5] [--fresh PATH]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# A baseline cell is *gated* (10% regression fails) only when the
# committed ratio clears this bar, i.e. the cell actually measures the
# engine speedup rather than shared-cost noise around 1x.
DEFAULT_MIN_GATED_RATIO = 1.5


def load_report(path):
    """Load one micro_cycle JSON report, dying with an actionable
    message (never a traceback) on a missing or malformed file."""
    try:
        with open(path, encoding="utf-8") as f:
            report = json.loads(f.read())
    except FileNotFoundError:
        raise SystemExit(
            f"bench_gate: baseline report '{path}' not found.\n"
            "  Generate one with:\n"
            "    build/bench/micro_cycle --json bench/BENCH_cycle.json\n"
            "  and commit it, or point --baseline/--fresh at an "
            "existing report.")
    except json.JSONDecodeError as err:
        raise SystemExit(
            f"bench_gate: '{path}' is not valid JSON ({err}).\n"
            "  Regenerate it with: build/bench/micro_cycle --json " + path)
    if not isinstance(report, dict) or report.get("bench") != "micro_cycle":
        raise SystemExit(
            f"bench_gate: '{path}' is not a micro_cycle report "
            "(missing \"bench\": \"micro_cycle\"). Regenerate it with: "
            "build/bench/micro_cycle --json " + path)
    for field in ("results", "repetitions", "window_ms"):
        if field not in report:
            raise SystemExit(
                f"bench_gate: '{path}' lacks the '{field}' field — it was "
                "written by an incompatible micro_cycle version. "
                "Regenerate it with the current binary.")
    return report


def ratios(report):
    """{(suite, scheme): compiled_cps / interpreted_cps}."""
    by_cell = {}
    for row in report["results"]:
        key = (row["suite"], row["scheme"])
        by_cell.setdefault(key, {})[row["engine"]] = row["cycles_per_second"]
    out = {}
    for key, engines in sorted(by_cell.items()):
        if "compiled" not in engines or "interpreted" not in engines:
            raise SystemExit(f"cell {key}: missing an engine in the report")
        if engines["interpreted"] <= 0:
            raise SystemExit(f"cell {key}: non-positive interpreted rate")
        out[key] = engines["compiled"] / engines["interpreted"]
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", required=True,
                    help="path to the built micro_cycle binary")
    ap.add_argument("--baseline", default="bench/BENCH_cycle.json",
                    help="committed baseline report")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional ratio regression (default 0.10)")
    ap.add_argument("--min-gated-ratio", type=float,
                    default=DEFAULT_MIN_GATED_RATIO,
                    help="baseline ratio below which a cell is only held to "
                         "the 1x floor (default %(default)s)")
    ap.add_argument("--fresh", default="",
                    help="reuse this report instead of re-running the bench")
    ap.add_argument("--dry-run", action="store_true",
                    help="validate the baseline (and --fresh report, if "
                         "given) and print the gated cells without running "
                         "the bench")
    args = ap.parse_args()

    baseline = load_report(args.baseline)
    base_ratios = ratios(baseline)

    if args.dry_run:
        print(f"bench_gate: baseline '{args.baseline}' ok — "
              f"{len(base_ratios)} cell(s), reps={baseline['repetitions']}, "
              f"window={baseline['window_ms']}ms")
        for (suite, scheme), ratio in sorted(base_ratios.items()):
            gated = ratio >= args.min_gated_ratio
            print(f"  {suite:<10} {scheme:<12} {ratio:>6.2f}x "
                  f"{'gated' if gated else 'floor-only'}")
        if args.fresh:
            fresh_ratios = ratios(load_report(args.fresh))
            print(f"bench_gate: fresh '{args.fresh}' ok — "
                  f"{len(fresh_ratios)} cell(s)")
        print("bench_gate: dry run, no bench executed")
        return 0

    if args.fresh:
        fresh = load_report(args.fresh)
    else:
        fd, tmp = tempfile.mkstemp(prefix="bench_gate_", suffix=".json")
        os.close(fd)
        try:
            cmd = [args.bench,
                   "--reps", str(baseline["repetitions"]),
                   "--window-ms", str(baseline["window_ms"]),
                   "--json", tmp]
            print("+", " ".join(cmd), flush=True)
            subprocess.run(cmd, check=True)
            fresh = load_report(tmp)
        finally:
            os.unlink(tmp)
    fresh_ratios = ratios(fresh)

    if set(fresh_ratios) != set(base_ratios):
        raise SystemExit("gate: fresh report and baseline cover different "
                         f"cells: {sorted(set(fresh_ratios) ^ set(base_ratios))}")

    failures = []
    print(f"{'suite':<10} {'scheme':<12} {'baseline':>9} {'fresh':>9} "
          f"{'floor':>9}  verdict")
    for key in sorted(base_ratios):
        base, got = base_ratios[key], fresh_ratios[key]
        gated = base >= args.min_gated_ratio
        # Gated cells must stay within tolerance of the committed ratio;
        # saturated cells must merely keep compiled from losing to
        # interpreted outright.
        floor = base * (1.0 - args.tolerance) if gated \
            else 1.0 - args.tolerance
        ok = got >= floor
        suite, scheme = key
        verdict = "ok" if ok else "REGRESSION"
        if not gated:
            verdict += " (ungated: transmission-bound cell)"
        print(f"{suite:<10} {scheme:<12} {base:>8.2f}x {got:>8.2f}x "
              f"{floor:>8.2f}x  {verdict}")
        if not ok:
            failures.append((key, base, got, floor))

    if failures:
        print(f"\nbench_gate: {len(failures)} cell(s) regressed beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for (suite, scheme), base, got, floor in failures:
            print(f"  {suite}/{scheme}: {got:.2f}x < floor {floor:.2f}x "
                  f"(baseline {base:.2f}x)", file=sys.stderr)
        return 1
    print("\nbench_gate: all cells within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
