#!/usr/bin/env python3
"""Structural validator for SARIF 2.1.0 files, stdlib only.

CI runs this over every SARIF artifact coeffctl emits (lint and
analyze). It is not a full JSON-Schema engine; it checks the subset of
the SARIF 2.1.0 spec that downstream consumers (GitHub code scanning,
IDE importers) actually require to ingest a log:

  * top-level object with version == "2.1.0" and a runs array
  * each run carries tool.driver.name (string)
  * declared rules have string ids and shortDescription.text
  * each result has a string ruleId, a level from the spec's closed
    vocabulary, and message.text
  * every result.ruleId is declared in the driver's rules (when the
    driver declares any rules at all)
  * locations, when present, nest artifactLocation.uri as strings

Usage: sarif_check.py FILE [FILE...]   exits 0 iff every file passes.
"""

import json
import sys

LEVELS = {"none", "note", "warning", "error"}


class Errors:
    def __init__(self, path):
        self.path = path
        self.items = []

    def add(self, where, msg):
        self.items.append(f"{self.path}: {where}: {msg}")


def expect(errors, where, obj, key, kind, required=True):
    """Return obj[key] if it exists with the right type, else None."""
    if not isinstance(obj, dict):
        errors.add(where, f"expected object, got {type(obj).__name__}")
        return None
    if key not in obj:
        if required:
            errors.add(where, f"missing required property '{key}'")
        return None
    value = obj[key]
    if not isinstance(value, kind):
        errors.add(
            where,
            f"property '{key}' must be {kind.__name__},"
            f" got {type(value).__name__}",
        )
        return None
    return value


def check_rule(errors, where, rule):
    rule_id = expect(errors, where, rule, "id", str)
    short = expect(errors, where, rule, "shortDescription", dict)
    if short is not None:
        expect(errors, f"{where}.shortDescription", short, "text", str)
    return rule_id


def check_location(errors, where, location):
    if not isinstance(location, dict):
        errors.add(where, "location must be an object")
        return
    physical = location.get("physicalLocation")
    if physical is None:
        return  # logicalLocations-only results are legal
    artifact = expect(
        errors, f"{where}.physicalLocation", physical, "artifactLocation",
        dict, required=False)
    if artifact is not None:
        expect(errors, f"{where}.physicalLocation.artifactLocation",
               artifact, "uri", str)


def check_result(errors, where, result, declared_rules):
    rule_id = expect(errors, where, result, "ruleId", str)
    if rule_id is not None and declared_rules is not None \
            and rule_id not in declared_rules:
        errors.add(where, f"ruleId '{rule_id}' is not declared in"
                          " tool.driver.rules")
    level = expect(errors, where, result, "level", str, required=False)
    if level is not None and level not in LEVELS:
        errors.add(where, f"level '{level}' not in {sorted(LEVELS)}")
    message = expect(errors, where, result, "message", dict)
    if message is not None:
        expect(errors, f"{where}.message", message, "text", str)
    locations = result.get("locations")
    if locations is not None:
        if not isinstance(locations, list):
            errors.add(where, "locations must be an array")
        else:
            for i, loc in enumerate(locations):
                check_location(errors, f"{where}.locations[{i}]", loc)


def check_run(errors, where, run):
    tool = expect(errors, where, run, "tool", dict)
    declared = None
    if tool is not None:
        driver = expect(errors, f"{where}.tool", tool, "driver", dict)
        if driver is not None:
            expect(errors, f"{where}.tool.driver", driver, "name", str)
            rules = driver.get("rules")
            if rules is not None:
                if not isinstance(rules, list):
                    errors.add(f"{where}.tool.driver",
                               "rules must be an array")
                else:
                    declared = set()
                    for i, rule in enumerate(rules):
                        rule_id = check_rule(
                            errors, f"{where}.tool.driver.rules[{i}]", rule)
                        if rule_id is not None:
                            if rule_id in declared:
                                errors.add(
                                    f"{where}.tool.driver.rules[{i}]",
                                    f"duplicate rule id '{rule_id}'")
                            declared.add(rule_id)
    results = expect(errors, where, run, "results", list, required=False)
    if results is not None:
        for i, result in enumerate(results):
            check_result(errors, f"{where}.results[{i}]", result, declared)


def check_file(path):
    errors = Errors(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        errors.add("(file)", f"not readable as JSON: {exc}")
        return errors.items
    if not isinstance(doc, dict):
        errors.add("$", "top level must be an object")
        return errors.items
    version = expect(errors, "$", doc, "version", str)
    if version is not None and version != "2.1.0":
        errors.add("$", f"version must be '2.1.0', got '{version}'")
    schema = doc.get("$schema")
    if schema is not None and not isinstance(schema, str):
        errors.add("$", "$schema must be a string when present")
    runs = expect(errors, "$", doc, "runs", list)
    if runs is not None:
        if not runs:
            errors.add("$", "runs must contain at least one run")
        for i, run in enumerate(runs):
            check_run(errors, f"$.runs[{i}]", run)
    return errors.items


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print(f"usage: {argv[0]} FILE [FILE...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        problems = check_file(path)
        if problems:
            failures += 1
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            print(f"{path}: OK (SARIF 2.1.0 structural checks)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
