// Figure 3: dynamic-segment bandwidth utilization, 25..100 minislots.
//
// Reported as delivered dynamic traffic normalized by the dynamic
// segment's wire capacity (both channels). FSPEC mirrors every frame
// (half its capacity carries redundant copies) and strands low-priority
// ids, so its useful utilization stays low. CoEfficient schedules the
// channels independently *and* steals idle static slots for dynamic
// overflow, so under load its normalized utilization can exceed 100% —
// the dynamic segment alone could not have carried that traffic, which
// is precisely the cooperative-scheduling headline (+52..56 points in
// the paper).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace coeff::bench;

  std::vector<coeff::core::SweepCell> cells;
  for (std::int64_t minislots : {25, 50, 75, 100}) {
    coeff::core::ExperimentConfig config;
    config.cluster = coeff::core::paper_cluster_dynamic_suite(minislots);
    apply_loaded_defaults(config);
    // Saturating stress: the utilization comparison presumes a dynamic
    // segment that stays loaded across the whole 25..100 minislot sweep.
    config.arrivals.burst = 20;
    config.ber = 1e-7;
    for (const auto scheme : {coeff::core::SchemeKind::kCoEfficient,
                              coeff::core::SchemeKind::kFspec}) {
      cells.push_back({config, scheme,
                       "minislots=" + std::to_string(minislots) + "/" +
                           coeff::core::to_string(scheme)});
    }
  }
  const auto report =
      run_figure(argc, argv, "fig3_bandwidth",
                 "Fig.3 — dynamic-segment bandwidth utilization", cells);
  print_header("synthetic statics + saturating SAE aperiodics, BER=1e-7");
  std::printf("%9s | %10s %10s %10s | %12s %12s\n", "minislots", "CoEff[%]",
              "FSPEC[%]", "gain[pts]", "CoEff Mb/s", "FSPEC Mb/s");
  std::size_t cell = 0;
  for (std::int64_t minislots : {25, 50, 75, 100}) {
    const auto& coeff = report.cells[cell++].result;
    const auto& fspec = report.cells[cell++].result;

    auto dyn_util = [](const coeff::core::ExperimentResult& r) {
      const double capacity_bits =
          r.run.dynamic_wire_capacity.as_seconds() * r.run.bus_bit_rate;
      return capacity_bits <= 0.0
                 ? 0.0
                 : static_cast<double>(r.run.dynamics.useful_payload_bits) /
                       capacity_bits;
    };
    auto throughput = [](const coeff::core::ExperimentResult& r) {
      const double secs = r.run.running_time.as_seconds();
      return secs <= 0.0 ? 0.0
                         : static_cast<double>(
                               r.run.dynamics.useful_payload_bits) /
                               secs / 1e6;
    };
    const double c = dyn_util(coeff) * 100.0;
    const double f = dyn_util(fspec) * 100.0;
    std::printf("%9lld | %10.1f %10.1f %10.1f | %12.2f %12.2f\n",
                static_cast<long long>(minislots), c, f, c - f,
                throughput(coeff), throughput(fspec));
  }
  std::printf(
      "\nCoEff values above 100%% = dynamic traffic carried through stolen\n"
      "static slack on top of a saturated dynamic segment.\n");
  return 0;
}
