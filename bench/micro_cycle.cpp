// Cycle-walk microbenchmark: simulated communication cycles per
// wall-clock second, for each scheme under both engines.
//
// This is the tentpole number for the compiled cycle engine: the same
// loaded baseline_comparison workload (synthetic statics + bursty SAE
// aperiodics, 50 minislots, BER=1e-7) is replayed with --engine
// compiled and --engine interpreted, and the ratio is the speedup the
// flat CycleTemplate walk buys over the slot-by-slot table
// interpretation. The workload window is fixed, so the cycle count per
// run is deterministic; each (scheme, engine) cell reports the median
// of N repetitions, which makes the number stable enough to gate CI on
// (tools/bench_gate.py).
//
// Output: a human table on stdout, a JSON report (default
// BENCH_cycle.json; bench/BENCH_cycle.json holds the committed
// baseline), and optionally one appended JSON line per invocation to a
// trajectory log for tracking the number across commits.
#include <cassert>
#include <fstream>

#include "bench_common.hpp"

namespace coeff::bench {
namespace {

struct MicroOptions {
  int reps = 5;
  std::int64_t window_ms = 400;
  std::string json = "BENCH_cycle.json";
  std::string trajectory;  // empty = no trajectory append
  std::string suite;       // empty = all suites
  std::string engine;      // empty = both engines
};

MicroOptions parse_micro_args(int argc, char** argv) {
  MicroOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--reps") {
      opt.reps = std::atoi(next("--reps"));
      if (opt.reps < 1) opt.reps = 1;
    } else if (arg == "--window-ms") {
      opt.window_ms = std::atoll(next("--window-ms"));
    } else if (arg == "--json") {
      opt.json = next("--json");
    } else if (arg == "--trajectory") {
      opt.trajectory = next("--trajectory");
    } else if (arg == "--suite") {
      opt.suite = next("--suite");
    } else if (arg == "--engine") {
      opt.engine = next("--engine");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--reps N] [--window-ms W] [--json PATH]\n"
          "          [--trajectory PATH]\n"
          "  --reps N          repetitions per cell; the median is\n"
          "                    reported (default: 5)\n"
          "  --window-ms W     release window; fixes the cycle count\n"
          "                    per run (default: 400)\n"
          "  --json PATH       JSON report; empty disables\n"
          "                    (default: BENCH_cycle.json)\n"
          "  --trajectory PATH append one JSON line per invocation\n"
          "                    (default: off)\n"
          "  --suite NAME      run only the named suite (loaded|sparse;\n"
          "                    default: all)\n"
          "  --engine NAME     run only one engine (compiled|interpreted;\n"
          "                    default: both, with speedup ratios)\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// The baseline_comparison workload, with the batch window overridden
/// so the run length (and hence the benchmarked cycle count) is a
/// command-line knob instead of the figure's 2 s default.
core::ExperimentConfig micro_config(std::int64_t window_ms) {
  core::ExperimentConfig config;
  config.cluster = core::paper_cluster_dynamic_suite(50);
  apply_loaded_defaults(config);
  config.ber = 1e-7;
  config.batch_window = sim::millis(window_ms);
  return config;
}

/// Steady-state workload: long-period statics and an empty dynamic
/// segment, so most slots and all minislots are idle. The loaded suite
/// is transmission-bound (the per-frame bookkeeping is identical under
/// both engines and dominates, so the engine ratio saturates near 1);
/// this suite is walk-bound and isolates the overhead the compiled
/// engine removes — per-slot virtual dispatch, per-minislot event-queue
/// probing, idle-minislot stepping.
core::ExperimentConfig sparse_config(std::int64_t window_ms) {
  core::ExperimentConfig config;
  config.cluster = core::paper_cluster_dynamic_suite(50);
  // Hand-rolled long-period set: power-of-two multiples of the 5 ms
  // cycle keep the template hyperperiod at 64 rows (random multiples
  // would make the lcm — and the template — explode).
  constexpr std::int64_t kPeriodsMs[] = {40, 80, 160, 320};
  sim::Rng rng(42);
  for (int i = 0; i < 40; ++i) {
    net::Message m;
    m.id = i + 1;
    m.name = "sparse" + std::to_string(i + 1);
    m.node = i % net::kPaperNodeCount;
    m.kind = net::MessageKind::kStatic;
    m.period = sim::millis(kPeriodsMs[i % 4]);
    m.deadline = sim::millis(kPeriodsMs[i % 4] / 2);
    m.size_bits = rng.uniform_int(256, 1280);
    config.statics.add(m);
  }
  config.ber = 1e-7;
  config.batch_window = sim::millis(window_ms);
  return config;
}

struct Suite {
  const char* name;
  const char* title;
  core::ExperimentConfig (*config)(std::int64_t window_ms);
};

constexpr Suite kSuites[] = {
    {"loaded", "loaded synthetic + SAE aperiodics, 50 minislots, BER=1e-7",
     micro_config},
    {"sparse", "steady-state: 40 long-period statics, idle dynamic segment",
     sparse_config},
};

struct CellResult {
  const char* suite = "loaded";
  core::SchemeKind scheme;
  flexray::EngineMode engine;
  std::int64_t cycles = 0;
  double median_seconds = 0.0;
  [[nodiscard]] double cycles_per_second() const {
    return median_seconds > 0.0
               ? static_cast<double>(cycles) / median_seconds
               : 0.0;
  }
};

const char* engine_name(flexray::EngineMode engine) {
  return engine == flexray::EngineMode::kCompiled ? "compiled"
                                                  : "interpreted";
}

CellResult run_cell(const MicroOptions& opt, const Suite& suite,
                    core::SchemeKind scheme, flexray::EngineMode engine) {
  core::ExperimentConfig config = suite.config(opt.window_ms);
  config.engine = engine;
  CellResult cell{suite.name, scheme, engine, 0, 0.0};
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(opt.reps));
  double miss_ratio = 0.0;
  for (int rep = 0; rep < opt.reps; ++rep) {
    const core::ExperimentResult result = core::run_experiment(config, scheme);
    // Time only the cycle walk: scheduler construction and plan solving
    // are engine-independent setup and would dilute the engine ratio.
    seconds.push_back(result.walk_seconds);
    if (engine == flexray::EngineMode::kCompiled &&
        result.compiled_cycles != result.cycles_run) {
      std::fprintf(stderr,
                   "micro_cycle: %s compiled run fell back to interpreted "
                   "(%lld/%lld cycles compiled) — not measuring the fast "
                   "path, refusing to report\n",
                   core::to_string(scheme),
                   static_cast<long long>(result.compiled_cycles),
                   static_cast<long long>(result.cycles_run));
      std::exit(1);
    }
    // Deterministic workload: every repetition (and both engines) must
    // replay the exact same simulation, or the throughput comparison
    // is measuring different work.
    if (rep == 0 && cell.cycles == 0) {
      cell.cycles = result.cycles_run;
      miss_ratio = result.run.overall_miss_ratio();
    } else if (result.cycles_run != cell.cycles ||
               result.run.overall_miss_ratio() != miss_ratio) {
      std::fprintf(stderr,
                   "micro_cycle: %s/%s repetition diverged (cycles %lld vs "
                   "%lld) — engine bug, refusing to report\n",
                   core::to_string(scheme), engine_name(engine),
                   static_cast<long long>(result.cycles_run),
                   static_cast<long long>(cell.cycles));
      std::exit(1);
    }
  }
  cell.median_seconds = median_of(seconds);
  return cell;
}

void write_json(const MicroOptions& opt, const std::vector<CellResult>& cells,
                const std::string& path, bool append) {
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "micro_cycle: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  char buf[256];
  std::string body;
  body += "{\"bench\":\"micro_cycle\",";
  std::snprintf(buf, sizeof buf, "\"window_ms\":%lld,\"repetitions\":%d,",
                static_cast<long long>(opt.window_ms), opt.reps);
  body += buf;
  body += "\"results\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    if (i != 0) body += ',';
    std::snprintf(buf, sizeof buf,
                  "{\"suite\":\"%s\",\"scheme\":\"%s\",\"engine\":\"%s\","
                  "\"cycles\":%lld,\"median_seconds\":%.6f,"
                  "\"cycles_per_second\":%.1f}",
                  c.suite, core::to_string(c.scheme), engine_name(c.engine),
                  static_cast<long long>(c.cycles), c.median_seconds,
                  c.cycles_per_second());
    body += buf;
  }
  body += "]}";
  out << body << '\n';
}

}  // namespace
}  // namespace coeff::bench

int main(int argc, char** argv) {
  using namespace coeff::bench;
  const MicroOptions opt = parse_micro_args(argc, argv);

  constexpr coeff::core::SchemeKind kSchemes[] = {
      coeff::core::SchemeKind::kCoEfficient, coeff::core::SchemeKind::kFspec,
      coeff::core::SchemeKind::kHosa};
  constexpr coeff::flexray::EngineMode kEngines[] = {
      coeff::flexray::EngineMode::kCompiled,
      coeff::flexray::EngineMode::kInterpreted};

  std::vector<CellResult> cells;
  std::printf("micro_cycle — cycle-walk throughput, %lld ms window, "
              "median of %d\n",
              static_cast<long long>(opt.window_ms), opt.reps);
  for (const Suite& suite : kSuites) {
    if (!opt.suite.empty() && opt.suite != suite.name) continue;
    const std::size_t first = cells.size();
    bool both_engines = true;
    for (const auto scheme : kSchemes) {
      for (const auto engine : kEngines) {
        if (!opt.engine.empty() && opt.engine != engine_name(engine)) {
          both_engines = false;
          continue;
        }
        cells.push_back(run_cell(opt, suite, scheme, engine));
      }
    }
    print_header(suite.title);
    std::printf("%-12s %-12s | %9s %12s %14s\n", "scheme", "engine", "cycles",
                "median[s]", "cycles/s");
    for (std::size_t i = first; i < cells.size(); ++i) {
      const CellResult& c = cells[i];
      std::printf("%-12s %-12s | %9lld %12.4f %14.0f\n",
                  coeff::core::to_string(c.scheme), engine_name(c.engine),
                  static_cast<long long>(c.cycles), c.median_seconds,
                  c.cycles_per_second());
    }
    if (!both_engines) continue;  // ratios need both sides
    std::printf("\nspeedup (compiled / interpreted), %s:\n", suite.name);
    for (std::size_t i = first; i + 1 < cells.size(); i += 2) {
      const CellResult& compiled = cells[i];
      const CellResult& interpreted = cells[i + 1];
      // Same workload must mean same cycle count across engines; a
      // mismatch would make cycles/s incomparable.
      if (compiled.cycles != interpreted.cycles) {
        std::fprintf(stderr, "micro_cycle: %s cycle count differs by engine\n",
                     coeff::core::to_string(compiled.scheme));
        return 1;
      }
      std::printf("  %-12s %.2fx\n", coeff::core::to_string(compiled.scheme),
                  interpreted.cycles_per_second() > 0.0
                      ? compiled.cycles_per_second() /
                            interpreted.cycles_per_second()
                      : 0.0);
    }
  }

  if (!opt.json.empty()) write_json(opt, cells, opt.json, /*append=*/false);
  if (!opt.trajectory.empty()) {
    write_json(opt, cells, opt.trajectory, /*append=*/true);
  }
  return 0;
}
