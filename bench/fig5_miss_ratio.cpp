// Figure 5: deadline miss ratio vs dynamic-segment size (25..100
// minislots), BER in {1e-7, 1e-9}.
//
// Miss ratio = instances not successfully delivered by their deadline /
// instances released, pooled over static and dynamic segments. The
// paper reports averages of 4.8% (CoEfficient) vs 21.3% (FSPEC) at
// BER=1e-7 and 3.2% vs 19.5% at 1e-9.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace coeff::bench;
  const auto report = run_figure(argc, argv, "fig5_miss_ratio",
                                 "Fig.5 — deadline miss ratio", fig5_cells());
  print_header("synthetic statics + SAE aperiodics");
  std::printf("%9s %7s | %10s %10s | %12s %12s\n", "minislots", "BER",
              "CoEff[%]", "FSPEC[%]", "CoEff dyn[%]", "FSPEC dyn[%]");
  double coeff_sum[2] = {0, 0}, fspec_sum[2] = {0, 0};
  std::size_t cell = 0;
  for (std::int64_t minislots : {25, 50, 75, 100}) {
    int ber_index = 0;
    for (double ber : {1e-7, 1e-9}) {
      const auto& coeff = report.cells[cell++].result;
      const auto& fspec = report.cells[cell++].result;
      const double c = coeff.run.overall_miss_ratio() * 100.0;
      const double f = fspec.run.overall_miss_ratio() * 100.0;
      coeff_sum[ber_index] += c;
      fspec_sum[ber_index] += f;
      std::printf("%9lld %7s | %10.2f %10.2f | %12.2f %12.2f\n",
                  static_cast<long long>(minislots),
                  ber < 1e-8 ? "1e-9" : "1e-7", c, f,
                  coeff.run.dynamics.miss_ratio() * 100.0,
                  fspec.run.dynamics.miss_ratio() * 100.0);
      ++ber_index;
    }
  }
  std::printf("\naverages: BER=1e-7 CoEff=%.2f%% FSPEC=%.2f%% | "
              "BER=1e-9 CoEff=%.2f%% FSPEC=%.2f%%\n",
              coeff_sum[0] / 4, fspec_sum[0] / 4, coeff_sum[1] / 4,
              fspec_sum[1] / 4);
  std::printf("paper:    BER=1e-7 CoEff=4.8%%  FSPEC=21.3%% | "
              "BER=1e-9 CoEff=3.2%%  FSPEC=19.5%%\n");
  return 0;
}
