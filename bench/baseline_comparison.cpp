// Three-way comparison: CoEfficient vs HOSA ([7]) vs FSPEC, under the
// loaded dynamic-suite configuration. Separates how much of
// CoEfficient's win comes from the optimized static table (which HOSA
// shares) and how much from cooperative slack stealing + differentiated
// retransmission (which only CoEfficient has).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace coeff::bench;

  coeff::core::ExperimentConfig config;
  config.cluster = coeff::core::paper_cluster_dynamic_suite(50);
  apply_loaded_defaults(config);
  config.ber = 1e-7;

  std::vector<coeff::core::SweepCell> cells;
  for (auto scheme :
       {coeff::core::SchemeKind::kCoEfficient, coeff::core::SchemeKind::kHosa,
        coeff::core::SchemeKind::kFspec}) {
    cells.push_back({config, scheme, coeff::core::to_string(scheme)});
  }
  const auto report =
      run_figure(argc, argv, "baseline_comparison",
                 "Baseline comparison — CoEfficient vs HOSA vs FSPEC", cells);
  print_header("loaded synthetic + SAE aperiodics, 50 minislots, BER=1e-7");
  std::printf("%-12s | %9s %12s %13s | %11s %13s | %10s\n", "scheme",
              "miss[%]", "stat miss[%]", "dyn miss[%]", "dyn lat[ms]",
              "dyn util[%]", "rel sched");

  for (const auto& cell : report.cells) {
    const auto& r = cell.result;
    const auto scheme = r.scheme;
    std::printf("%-12s | %9.2f %12.2f %13.2f | %11.3f %13.1f | %10.6f\n",
                coeff::core::to_string(scheme),
                r.run.overall_miss_ratio() * 100.0,
                r.run.statics.miss_ratio() * 100.0,
                r.run.dynamics.miss_ratio() * 100.0,
                r.run.dynamics.latency.mean_ms(),
                r.run.dynamic_bandwidth_utilization() * 100.0,
                r.reliability_scheduled);
  }
  return 0;
}
