// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one table/figure of the paper's evaluation
// (§IV) and prints the series as aligned text rows; EXPERIMENTS.md maps
// binaries to figures and records paper-vs-measured values.
#pragma once

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "net/workloads.hpp"

namespace coeff::bench {

/// BBW + ACC merged, as released by the paper's application scenarios.
inline net::MessageSet app_statics() {
  return net::brake_by_wire().merged_with(net::adaptive_cruise());
}

/// Synthetic static suite of `count` messages (§IV-A parameters).
inline net::MessageSet synthetic_statics(std::size_t count,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  net::SyntheticStaticOptions opt;
  opt.count = count;
  return net::synthetic_static(opt, rng);
}

/// SAE-style aperiodic set (30 messages, 50 ms) for a cluster with the
/// given number of static slots. `heavy` enlarges the messages so the
/// dynamic segment is contended, which the running-time experiments
/// need (the paper's SAE class-C set includes multi-frame payloads).
inline net::MessageSet sae_dynamics(int static_slots, std::uint64_t seed,
                                    bool heavy = false) {
  sim::Rng rng(seed);
  net::SaeAperiodicOptions opt;
  opt.static_slots = static_slots;
  if (heavy) {
    opt.min_bits = 256;
    opt.max_bits = 2000;  // within one frame (254 bytes)
  }
  return net::sae_aperiodic(opt, rng);
}

/// The loaded synthetic configuration the dynamic-segment figures use:
/// 100 static messages (more than FSPEC's 80 exclusive slots can hold)
/// and bursty aperiodic arrivals (interrupt-driven SAE traffic arrives
/// in clumps), which is what exposes FTDMA priority starvation.
inline void apply_loaded_defaults(core::ExperimentConfig& config) {
  config.statics = synthetic_statics(100, 42);
  config.dynamics = sae_dynamics(80, 7, /*heavy=*/true);
  config.arrivals.process = net::ArrivalProcess::kBursty;
  config.arrivals.burst = 3;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::millis(2000);
  config.seed = 42;
}

/// The paper pairs each BER with a reliability goal ("BER = 1e-7 and
/// 1e-9 ... correspond to different reliability goals"): 1e-7 with the
/// SIL3 budget, 1e-9 with the stricter SIL4 budget.
inline fault::Sil sil_for_ber(double ber) {
  return ber < 1e-8 ? fault::Sil::kSil4 : fault::Sil::kSil3;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Run one config under both schemes.
struct Pair {
  core::ExperimentResult coeff;
  core::ExperimentResult fspec;
};

inline Pair run_both(const core::ExperimentConfig& config) {
  return Pair{
      core::run_experiment(config, core::SchemeKind::kCoEfficient),
      core::run_experiment(config, core::SchemeKind::kFspec),
  };
}

}  // namespace coeff::bench
