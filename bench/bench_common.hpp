// Shared helpers for the figure-reproduction benchmark binaries.
//
// Each binary regenerates one table/figure of the paper's evaluation
// (§IV) and prints the series as aligned text rows; EXPERIMENTS.md maps
// binaries to figures and records paper-vs-measured values.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "net/workloads.hpp"

namespace coeff::bench {

/// BBW + ACC merged, as released by the paper's application scenarios.
inline net::MessageSet app_statics() {
  return net::brake_by_wire().merged_with(net::adaptive_cruise());
}

/// Synthetic static suite of `count` messages (§IV-A parameters).
inline net::MessageSet synthetic_statics(std::size_t count,
                                         std::uint64_t seed) {
  sim::Rng rng(seed);
  net::SyntheticStaticOptions opt;
  opt.count = count;
  return net::synthetic_static(opt, rng);
}

/// SAE-style aperiodic set (30 messages, 50 ms) for a cluster with the
/// given number of static slots. `heavy` enlarges the messages so the
/// dynamic segment is contended, which the running-time experiments
/// need (the paper's SAE class-C set includes multi-frame payloads).
inline net::MessageSet sae_dynamics(int static_slots, std::uint64_t seed,
                                    bool heavy = false) {
  sim::Rng rng(seed);
  net::SaeAperiodicOptions opt;
  opt.static_slots = static_slots;
  if (heavy) {
    opt.min_bits = 256;
    opt.max_bits = 2000;  // within one frame (254 bytes)
  }
  return net::sae_aperiodic(opt, rng);
}

/// The loaded synthetic configuration the dynamic-segment figures use:
/// 100 static messages (more than FSPEC's 80 exclusive slots can hold)
/// and bursty aperiodic arrivals (interrupt-driven SAE traffic arrives
/// in clumps), which is what exposes FTDMA priority starvation.
inline void apply_loaded_defaults(core::ExperimentConfig& config) {
  config.statics = synthetic_statics(100, 42);
  config.dynamics = sae_dynamics(80, 7, /*heavy=*/true);
  config.arrivals.process = net::ArrivalProcess::kBursty;
  config.arrivals.burst = 3;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::millis(2000);
  config.seed = 42;
}

/// The paper pairs each BER with a reliability goal ("BER = 1e-7 and
/// 1e-9 ... correspond to different reliability goals"): 1e-7 with the
/// SIL3 budget, 1e-9 with the stricter SIL4 budget.
inline fault::Sil sil_for_ber(double ber) {
  return ber < 1e-8 ? fault::Sil::kSil4 : fault::Sil::kSil3;
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Monotonic stopwatch shared by the figure reporter and the cycle
/// microbenchmark; wraps steady_clock so no binary rolls its own.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Median of a sample set (destructive on a copy). The microbenchmark
/// and the perf gate both report medians: a background-load spike can
/// only shift one repetition, not the reported number.
inline double median_of(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  return samples.size() % 2 != 0
             ? samples[mid]
             : 0.5 * (samples[mid - 1] + samples[mid]);
}

/// Command-line options shared by every figure binary. Figure rows on
/// stdout are byte-identical for any `--jobs` value; timing lives on
/// stderr and in the JSON report.
struct BenchOptions {
  int jobs = 0;  // 0 = COEFF_JOBS env var, else hardware concurrency
  std::string sweep_json = "BENCH_sweep.json";
};

inline BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs" || arg == "-j") {
      opt.jobs = std::atoi(next("--jobs"));
    } else if (arg == "--sweep-json") {
      opt.sweep_json = next("--sweep-json");
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--jobs N] [--sweep-json PATH]\n"
          "  --jobs N          parallel sweep workers (default: COEFF_JOBS\n"
          "                    env var, else hardware concurrency)\n"
          "  --sweep-json PATH per-cell wall-time report; empty string\n"
          "                    disables it (default: BENCH_sweep.json)\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// Run the cell grid through SweepRunner, emit the timing JSON, and
/// print a one-line summary to stderr.
inline core::SweepReport run_sweep(const std::string& suite,
                                   const std::vector<core::SweepCell>& cells,
                                   const BenchOptions& opt) {
  const core::SweepRunner runner(opt.jobs);
  core::SweepReport report = runner.run(cells);
  if (!opt.sweep_json.empty()) {
    // A bad report path must not discard a finished sweep: warn and
    // still print the figure.
    try {
      core::write_sweep_json(report, suite, opt.sweep_json);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[sweep] warning: %s\n", e.what());
    }
  }
  const std::string sink =
      opt.sweep_json.empty() ? std::string() : " -> " + opt.sweep_json;
  std::fprintf(stderr,
               "[sweep] %s: %zu cells, jobs=%d, wall=%.3fs, serial=%.3fs "
               "(%.2fx)%s\n",
               suite.c_str(), report.cells.size(), report.jobs,
               report.total_wall_seconds, report.serial_estimate_seconds,
               report.speedup_estimate(), sink.c_str());
  return report;
}

/// Shared prologue of every figure binary: parse the common flags, run
/// the grid through the sweep reporter, and print the figure banner.
/// Keeps the six binaries down to "build cells, format rows".
inline core::SweepReport run_figure(int argc, char** argv,
                                    const std::string& suite,
                                    const std::string& title,
                                    const std::vector<core::SweepCell>& cells) {
  const BenchOptions opt = parse_bench_args(argc, argv);
  core::SweepReport report = run_sweep(suite, cells, opt);
  std::printf("%s\n", title.c_str());
  return report;
}

/// The Fig.5 grid — minislots × BER × scheme, in print order. Shared
/// with the sweep determinism test, which replays the full grid under
/// different job counts and requires identical results.
inline std::vector<core::SweepCell> fig5_cells() {
  std::vector<core::SweepCell> cells;
  for (std::int64_t minislots : {25, 50, 75, 100}) {
    for (double ber : {1e-7, 1e-9}) {
      core::ExperimentConfig config;
      config.cluster = core::paper_cluster_dynamic_suite(minislots);
      apply_loaded_defaults(config);
      config.ber = ber;
      config.sil = sil_for_ber(ber);
      for (const auto scheme :
           {core::SchemeKind::kCoEfficient, core::SchemeKind::kFspec}) {
        cells.push_back({config, scheme,
                         "minislots=" + std::to_string(minislots) +
                             "/ber=" + (ber < 1e-8 ? "1e-9" : "1e-7") + "/" +
                             core::to_string(scheme)});
      }
    }
  }
  return cells;
}

}  // namespace coeff::bench
