// Figure 4: average transmission latency of static and dynamic
// segments, for 50 and 100 minislots, BER in {1e-7, 1e-9}.
//
//   (a) static segments, synthetic test cases
//   (b) static segments, BBW and ACC
//   (c) dynamic segments, synthetic test cases
//   (d) dynamic segments, BBW and ACC
//
// Latency is generation-to-first-successful-delivery; instances never
// delivered appear in the miss ratio (Fig 5), not here.
#include "bench_common.hpp"

namespace coeff::bench {
namespace {

struct Panel {
  const char* panel;
  const char* suite;
  bool synthetic;
};

constexpr Panel kPanels[] = {
    {"a,c", "synthetic", true},
    {"b,d", "BBW+ACC", false},
};

core::ExperimentConfig panel_config(const Panel& panel, std::int64_t minislots,
                                    double ber) {
  core::ExperimentConfig config;
  if (panel.synthetic) {
    config.cluster = core::paper_cluster_dynamic_suite(minislots);
    apply_loaded_defaults(config);
  } else {
    config.cluster =
        core::paper_cluster_apps(std::min<std::int64_t>(minislots / 2, 31));
    apply_loaded_defaults(config);
    config.statics = app_statics();
    config.dynamics = sae_dynamics(
        static_cast<int>(config.cluster.g_number_of_static_slots), 7,
        /*heavy=*/true);
  }
  config.ber = ber;
  config.sil = sil_for_ber(ber);
  return config;
}

std::vector<core::SweepCell> build_cells() {
  std::vector<core::SweepCell> cells;
  for (const Panel& panel : kPanels) {
    for (std::int64_t minislots : {50, 100}) {
      for (double ber : {1e-7, 1e-9}) {
        const auto config = panel_config(panel, minislots, ber);
        for (const auto scheme :
             {core::SchemeKind::kCoEfficient, core::SchemeKind::kFspec}) {
          cells.push_back({config, scheme,
                           std::string(panel.suite) +
                               "/minislots=" + std::to_string(minislots) +
                               "/ber=" + (ber < 1e-8 ? "1e-9" : "1e-7") + "/" +
                               core::to_string(scheme)});
        }
      }
    }
  }
  return cells;
}

void print_panel(const Panel& panel, const core::SweepReport& report,
                 std::size_t& cell) {
  print_header(std::string("Fig.4(") + panel.panel + ") " + panel.suite);
  std::printf(
      "%9s %7s | %-15s | %13s %13s | %13s %13s\n", "minislots", "BER",
      "metric", "CoEff stat[ms]", "FSPEC stat[ms]", "CoEff dyn[ms]",
      "FSPEC dyn[ms]");
  for (std::int64_t minislots : {50, 100}) {
    for (double ber : {1e-7, 1e-9}) {
      const auto& coeff = report.cells[cell++].result;
      const auto& fspec = report.cells[cell++].result;
      const char* ber_name = ber < 1e-8 ? "1e-9" : "1e-7";
      // Completion latency is the paper's metric ("from the generation
      // time to the ending time" of the whole transmission).
      std::printf("%9lld %7s | %-15s | %13.3f %13.3f | %13.3f %13.3f\n",
                  static_cast<long long>(minislots), ber_name, "completion",
                  coeff.run.statics.completion.mean_ms(),
                  fspec.run.statics.completion.mean_ms(),
                  coeff.run.dynamics.completion.mean_ms(),
                  fspec.run.dynamics.completion.mean_ms());
      std::printf("%9lld %7s | %-15s | %13.3f %13.3f | %13.3f %13.3f\n",
                  static_cast<long long>(minislots), ber_name, "first-success",
                  coeff.run.statics.latency.mean_ms(),
                  fspec.run.statics.latency.mean_ms(),
                  coeff.run.dynamics.latency.mean_ms(),
                  fspec.run.dynamics.latency.mean_ms());
    }
  }
}

}  // namespace
}  // namespace coeff::bench

int main(int argc, char** argv) {
  using namespace coeff::bench;
  const auto report =
      run_figure(argc, argv, "fig4_latency",
                 "Fig.4 — average transmission latency", build_cells());
  std::size_t cell = 0;
  for (const Panel& panel : kPanels) print_panel(panel, report, cell);
  return 0;
}
