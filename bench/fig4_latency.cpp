// Figure 4: average transmission latency of static and dynamic
// segments, for 50 and 100 minislots, BER in {1e-7, 1e-9}.
//
//   (a) static segments, synthetic test cases
//   (b) static segments, BBW and ACC
//   (c) dynamic segments, synthetic test cases
//   (d) dynamic segments, BBW and ACC
//
// Latency is generation-to-first-successful-delivery; instances never
// delivered appear in the miss ratio (Fig 5), not here.
#include "bench_common.hpp"

namespace coeff::bench {
namespace {

void run_panel(const char* panel, const char* suite, bool synthetic) {
  print_header(std::string("Fig.4(") + panel + ") " + suite);
  std::printf(
      "%9s %7s | %-15s | %13s %13s | %13s %13s\n", "minislots", "BER",
      "metric", "CoEff stat[ms]", "FSPEC stat[ms]", "CoEff dyn[ms]",
      "FSPEC dyn[ms]");
  for (std::int64_t minislots : {50, 100}) {
    for (double ber : {1e-7, 1e-9}) {
      core::ExperimentConfig config;
      if (synthetic) {
        config.cluster = core::paper_cluster_dynamic_suite(minislots);
        apply_loaded_defaults(config);
      } else {
        config.cluster =
            core::paper_cluster_apps(std::min<std::int64_t>(minislots / 2, 31));
        apply_loaded_defaults(config);
        config.statics = app_statics();
        config.dynamics = sae_dynamics(
            static_cast<int>(config.cluster.g_number_of_static_slots), 7,
            /*heavy=*/true);
      }
      config.ber = ber;
      config.sil = sil_for_ber(ber);
      const auto pair = run_both(config);
      const char* ber_name = ber < 1e-8 ? "1e-9" : "1e-7";
      // Completion latency is the paper's metric ("from the generation
      // time to the ending time" of the whole transmission).
      std::printf("%9lld %7s | %-15s | %13.3f %13.3f | %13.3f %13.3f\n",
                  static_cast<long long>(minislots), ber_name, "completion",
                  pair.coeff.run.statics.completion.mean_ms(),
                  pair.fspec.run.statics.completion.mean_ms(),
                  pair.coeff.run.dynamics.completion.mean_ms(),
                  pair.fspec.run.dynamics.completion.mean_ms());
      std::printf("%9lld %7s | %-15s | %13.3f %13.3f | %13.3f %13.3f\n",
                  static_cast<long long>(minislots), ber_name, "first-success",
                  pair.coeff.run.statics.latency.mean_ms(),
                  pair.fspec.run.statics.latency.mean_ms(),
                  pair.coeff.run.dynamics.latency.mean_ms(),
                  pair.fspec.run.dynamics.latency.mean_ms());
    }
  }
}

}  // namespace
}  // namespace coeff::bench

int main() {
  using namespace coeff::bench;
  std::printf("Fig.4 — average transmission latency\n");
  run_panel("a,c", "synthetic", true);
  run_panel("b,d", "BBW+ACC", false);
  return 0;
}
