// Ablations of CoEfficient's three design choices (DESIGN.md §6):
//
//   1. differentiated vs uniform retransmission planning,
//   2. selective slack stealing vs own-slot-mirror-only copies,
//   3. dual-channel vs single-channel dynamic scheduling.
//
// Each row disables exactly one mechanism under the loaded dynamic-suite
// configuration and reports what the full design buys.
#include "bench_common.hpp"

namespace coeff::bench {
namespace {

core::ExperimentConfig base_config() {
  core::ExperimentConfig config;
  config.cluster = core::paper_cluster_dynamic_suite(50);
  apply_loaded_defaults(config);
  config.ber = 1e-7;
  return config;
}

void report(const char* name, const core::ExperimentResult& r) {
  std::printf(
      "%-22s | miss=%6.2f%% dyn_miss=%6.2f%% dyn_lat=%7.3fms "
      "retx(sent/dropped)=%lld/%lld added_load=%.0f b/s rel=%.9f\n",
      name, r.run.overall_miss_ratio() * 100.0,
      r.run.dynamics.miss_ratio() * 100.0,
      r.run.dynamics.latency.mean_ms(),
      static_cast<long long>(r.run.retransmission_copies_sent),
      static_cast<long long>(r.run.retransmission_copies_dropped),
      r.plan_added_load_bits_per_second, r.reliability_scheduled);
}

}  // namespace
}  // namespace coeff::bench

int main(int argc, char** argv) {
  using namespace coeff::bench;

  auto uniform = base_config();
  uniform.ablation_uniform_plan = true;
  auto no_slack = base_config();
  no_slack.ablation_no_slack = true;
  auto single = base_config();
  single.ablation_single_channel = true;

  const std::vector<coeff::core::SweepCell> cells = {
      {base_config(), coeff::core::SchemeKind::kCoEfficient, "full"},
      {uniform, coeff::core::SchemeKind::kCoEfficient, "uniform_plan"},
      {no_slack, coeff::core::SchemeKind::kCoEfficient, "no_slack"},
      {single, coeff::core::SchemeKind::kCoEfficient, "single_channel"},
  };
  const auto report_cells = run_figure(
      argc, argv, "ablation_design",
      "Ablations — what each CoEfficient mechanism contributes\n",
      cells);
  report("full CoEfficient", report_cells.cells[0].result);
  report("uniform retx plan", report_cells.cells[1].result);
  report("no slack stealing", report_cells.cells[2].result);
  report("single-channel dynamics", report_cells.cells[3].result);
  return 0;
}
