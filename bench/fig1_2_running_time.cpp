// Figures 1 and 2: overall running time vs number of messages.
//
//   Fig 1(a)/2(a): BBW + ACC application messages.
//   Fig 1(b)/2(b): synthetic test cases (larger-scale message sets).
//   Fig 1 uses BER = 1e-7, Fig 2 uses BER = 1e-9.
//
// "Running time" is the batch makespan: instances are released for a
// fixed window and the run continues until every transmission the
// scheme owes (primaries, retransmission copies, mirrors, queued
// dynamics) has been clocked onto the wire. CoEfficient drains through
// both channels and stolen slack; FSPEC's mirrored, separately
// scheduled segments drain far slower, and more static slots (120 vs
// 80) shrink the dynamic segment and stretch FSPEC further — the
// paper's qualitative result.
#include "bench_common.hpp"

namespace coeff::bench {
namespace {

struct Suite {
  const char* name;
  double ber;
  bool synthetic;
};

constexpr Suite kSuites[] = {
    {"apps", 1e-7, false},      // Fig 1(a)
    {"synthetic", 1e-7, true},  // Fig 1(b)
    {"apps", 1e-9, false},      // Fig 2(a)
    {"synthetic", 1e-9, true},  // Fig 2(b)
};

std::vector<std::size_t> message_sweep(const Suite& suite) {
  return suite.synthetic ? std::vector<std::size_t>{40, 80, 120, 160, 200}
                         : std::vector<std::size_t>{10, 20, 30, 40};
}

core::ExperimentConfig row_config(const Suite& suite, std::int64_t slots,
                                  std::size_t n) {
  core::ExperimentConfig config;
  if (suite.synthetic) {
    config.cluster = core::paper_cluster_static_suite(slots);
    config.statics = synthetic_statics(n, 42);
  } else {
    // BBW/ACC need the 1 ms application cycle; the 80/120-slot knob
    // maps to its dynamic-segment share (see EXPERIMENTS.md).
    config.cluster = core::paper_cluster_apps(slots == 80 ? 25 : 10);
    config.statics = app_statics().prefix(n);
  }
  config.dynamics = sae_dynamics(
      static_cast<int>(config.cluster.g_number_of_static_slots), 7,
      /*heavy=*/true);
  // Bursty aperiodic traffic loads the dynamic segment; the batch
  // makespan is dominated by how fast each scheme can drain it.
  config.arrivals.process = net::ArrivalProcess::kBursty;
  config.arrivals.burst = 20;
  config.ber = suite.ber;
  config.sil = sil_for_ber(suite.ber);
  config.batch_window = sim::millis(500);
  config.drain_batch = true;
  config.seed = 42;
  return config;
}

std::vector<core::SweepCell> build_cells() {
  std::vector<core::SweepCell> cells;
  for (const Suite& suite : kSuites) {
    for (std::int64_t slots : {80, 120}) {
      for (std::size_t n : message_sweep(suite)) {
        const auto config = row_config(suite, slots, n);
        for (const auto scheme :
             {core::SchemeKind::kCoEfficient, core::SchemeKind::kFspec}) {
          cells.push_back({config, scheme,
                           std::string(suite.name) +
                               "/ber=" + (suite.ber < 1e-8 ? "1e-9" : "1e-7") +
                               "/slots=" + std::to_string(slots) +
                               "/n=" + std::to_string(n) + "/" +
                               core::to_string(scheme)});
        }
      }
    }
  }
  return cells;
}

void print_suite(const Suite& suite, const core::SweepReport& report,
                 std::size_t& cell) {
  print_header(std::string(suite.name) +
               " (BER=" + (suite.ber < 1e-8 ? "1e-9" : "1e-7") + ")");
  std::printf("%-10s %6s %9s | %14s %14s %7s\n", "suite", "slots", "messages",
              "CoEfficient[s]", "FSPEC[s]", "ratio");
  for (std::int64_t slots : {80, 120}) {
    for (std::size_t n : message_sweep(suite)) {
      const auto& coeff = report.cells[cell++].result;
      const auto& fspec = report.cells[cell++].result;
      std::printf("%-10s %6lld %9zu | %14.3f %14.3f %6.2fx%s\n", suite.name,
                  static_cast<long long>(slots), n,
                  coeff.run.running_time.as_seconds(),
                  fspec.run.running_time.as_seconds(),
                  fspec.run.running_time.as_seconds() /
                      coeff.run.running_time.as_seconds(),
                  fspec.drained ? "" : " (FSPEC drain capped)");
    }
  }
}

}  // namespace
}  // namespace coeff::bench

int main(int argc, char** argv) {
  using namespace coeff::bench;
  const auto report =
      run_figure(argc, argv, "fig1_2_running_time",
                 "Fig.1/2 — running time (batch makespan)", build_cells());
  std::size_t cell = 0;
  for (const Suite& suite : kSuites) print_suite(suite, report, cell);
  return 0;
}
