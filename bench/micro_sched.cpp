// Micro-benchmarks of the scheduling and reliability kernels: the costs
// that bound how fast the offline configuration step and the per-slot
// online decisions run.
#include <benchmark/benchmark.h>

#include "fault/reliability.hpp"
#include "net/workloads.hpp"
#include "sched/periodic_schedule.hpp"
#include "sched/rta.hpp"
#include "sched/schedule_table.hpp"
#include "sched/slack_stealer.hpp"
#include "sched/slack_table.hpp"
#include "sim/random.hpp"

namespace {

using namespace coeff;

sched::TaskSet make_task_set(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<sched::PeriodicTask> tasks;
  for (int i = 0; i < n; ++i) {
    sched::PeriodicTask t;
    t.id = i;
    t.period = sim::millis(rng.uniform_int(1, 10) * 5);
    t.wcet = sim::micros(rng.uniform_int(10, 60));
    t.deadline = t.period;
    t.offset = sim::micros(rng.uniform_int(0, 999));
    tasks.push_back(t);
  }
  return sched::TaskSet(std::move(tasks));
}

net::MessageSet make_statics(std::size_t n) {
  sim::Rng rng(17);
  net::SyntheticStaticOptions opt;
  opt.count = n;
  return net::synthetic_static(opt, rng);
}

void BM_ResponseTimeAnalysis(benchmark::State& state) {
  const auto set = make_task_set(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::response_time_analysis(set));
  }
}
BENCHMARK(BM_ResponseTimeAnalysis)->Arg(10)->Arg(50)->Arg(200);

void BM_PeriodicScheduleSimulation(benchmark::State& state) {
  const auto set = make_task_set(static_cast<int>(state.range(0)), 5);
  const auto horizon = set.hyperperiod() * 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::simulate_periodic(set, horizon));
  }
}
BENCHMARK(BM_PeriodicScheduleSimulation)->Arg(10)->Arg(50)->Arg(200);

void BM_SlackTableBuild(benchmark::State& state) {
  const auto set = make_task_set(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    sched::SlackTable table(set);
    benchmark::DoNotOptimize(table.schedulable());
  }
}
BENCHMARK(BM_SlackTableBuild)->Arg(10)->Arg(50)->Arg(200);

void BM_SlackQuery(benchmark::State& state) {
  const auto set = make_task_set(static_cast<int>(state.range(0)), 9);
  const sched::SlackTable table(set);
  sim::Rng rng(1);
  std::int64_t t_us = 0;
  for (auto _ : state) {
    t_us += rng.uniform_int(1, 500);
    benchmark::DoNotOptimize(table.slack_at(sim::micros(t_us)));
  }
}
BENCHMARK(BM_SlackQuery)->Arg(10)->Arg(50)->Arg(200);

void BM_SlackStealerGrant(benchmark::State& state) {
  const auto set = make_task_set(50, 11);
  sched::SlackStealer stealer(set);
  std::int64_t t_us = 0;
  for (auto _ : state) {
    t_us += 40;
    benchmark::DoNotOptimize(
        stealer.try_steal(sim::micros(t_us), sim::micros(5)));
  }
}
BENCHMARK(BM_SlackStealerGrant);

void BM_DifferentiatedSolver(benchmark::State& state) {
  const auto set = make_statics(static_cast<std::size_t>(state.range(0)));
  fault::SolverOptions opt;
  opt.ber = 1e-7;
  opt.rho = 1.0 - 1e-7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::solve_differentiated(set, opt));
  }
}
BENCHMARK(BM_DifferentiatedSolver)->Arg(20)->Arg(100)->Arg(200);

void BM_UniformSolver(benchmark::State& state) {
  const auto set = make_statics(static_cast<std::size_t>(state.range(0)));
  fault::SolverOptions opt;
  opt.ber = 1e-7;
  opt.rho = 1.0 - 1e-7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fault::solve_uniform(set, opt));
  }
}
BENCHMARK(BM_UniformSolver)->Arg(20)->Arg(100)->Arg(200);

void BM_ScheduleTableBuild(benchmark::State& state) {
  const auto set = make_statics(static_cast<std::size_t>(state.range(0)));
  auto cfg = flexray::ClusterConfig::static_suite(80);
  cfg.bus_bit_rate = 50'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::StaticScheduleTable::build(set, cfg));
  }
}
BENCHMARK(BM_ScheduleTableBuild)->Arg(20)->Arg(100)->Arg(200);

void BM_ReliabilityEvaluation(benchmark::State& state) {
  const auto set = make_statics(static_cast<std::size_t>(state.range(0)));
  const std::vector<int> copies(set.size(), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fault::log_set_reliability(set, copies, 1e-7, sim::seconds(3600)));
  }
}
BENCHMARK(BM_ReliabilityEvaluation)->Arg(20)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
