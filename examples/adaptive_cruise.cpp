// Adaptive Cruise Controller scenario (Table III) with mixed traffic:
// ACC's periodic control frames share the bus with event-triggered
// aperiodic messages, the situation CoEfficient's cooperative
// scheduling is built for. Sweeps the aperiodic burst size and reports
// how each scheme's dynamic-segment service degrades.
//
//   ./build/examples/adaptive_cruise
#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace coeff;

  core::ExperimentConfig base;
  base.cluster = core::paper_cluster_apps();
  base.statics = net::adaptive_cruise();

  sim::Rng rng(21);
  net::SaeAperiodicOptions sae;
  sae.static_slots =
      static_cast<int>(base.cluster.g_number_of_static_slots);
  sae.min_bits = 256;
  sae.max_bits = 2000;
  base.dynamics = net::sae_aperiodic(sae, rng);
  base.ber = 1e-7;
  base.sil = fault::Sil::kSil3;
  base.batch_window = sim::millis(1000);

  std::printf("ACC + 30 aperiodic messages on %s\n\n",
              flexray::describe(base.cluster).c_str());
  std::printf("%6s | %20s %20s | %18s %18s\n", "burst", "CoEff dyn miss[%]",
              "FSPEC dyn miss[%]", "CoEff dyn lat[ms]", "FSPEC dyn lat[ms]");

  for (int burst : {1, 2, 4, 8}) {
    auto config = base;
    config.arrivals.process = burst == 1 ? net::ArrivalProcess::kPeriodic
                                         : net::ArrivalProcess::kBursty;
    config.arrivals.burst = burst;
    const auto coeff =
        core::run_experiment(config, core::SchemeKind::kCoEfficient);
    const auto fspec = core::run_experiment(config, core::SchemeKind::kFspec);
    std::printf("%6d | %20.2f %20.2f | %18.3f %18.3f\n", burst,
                coeff.run.dynamics.miss_ratio() * 100.0,
                fspec.run.dynamics.miss_ratio() * 100.0,
                coeff.run.dynamics.latency.mean_ms(),
                fspec.run.dynamics.latency.mean_ms());
  }

  std::printf(
      "\nCoEfficient serves the dynamic segment on both channels and pulls\n"
      "overflow into idle static slots; FSPEC mirrors one channel onto the\n"
      "other, so its dynamic capacity halves and low-priority ids starve.\n");
  return 0;
}
