// Quickstart: schedule the Brake-By-Wire message set plus an SAE-style
// aperiodic load with CoEfficient and with the FSPEC baseline, and
// compare the headline metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace coeff;

  core::ExperimentConfig config;
  // Paper §IV-A application configuration: 1 ms communication cycle with
  // a 0.75 ms static segment (BBW's fastest period is 1 ms), 10 ECU
  // nodes, remaining bandwidth dynamic.
  config.cluster = core::paper_cluster_apps();
  config.statics = net::brake_by_wire();

  sim::Rng rng(7);
  net::SaeAperiodicOptions sae;
  sae.static_slots =
      static_cast<int>(config.cluster.g_number_of_static_slots);
  config.dynamics = net::sae_aperiodic(sae, rng);

  config.ber = 1e-7;
  config.sil = fault::Sil::kSil3;  // reliability goal 1 - 1e-7 per hour
  config.batch_window = sim::seconds(2);

  std::printf("cluster: %s\n\n", flexray::describe(config.cluster).c_str());

  for (auto scheme :
       {core::SchemeKind::kCoEfficient, core::SchemeKind::kFspec}) {
    const auto result = core::run_experiment(config, scheme);
    std::printf("=== %s ===\n", core::to_string(scheme));
    std::printf("%s", result.run.summary().c_str());
    std::printf("reliability: target=%.9f scheduled=%.9f%s\n\n",
                result.rho_target, result.reliability_scheduled,
                result.fspec_rounds > 0
                    ? (" (rounds=" + std::to_string(result.fspec_rounds) + ")")
                          .c_str()
                    : "");
  }
  return 0;
}
