// Reliability-goal exploration across IEC 61508 safety integrity
// levels: how many retransmission copies each SIL costs, what bandwidth
// that adds, and whether the goal survives contact with injected faults
// (measured delivery over a long run vs the analytic Theorem-1 value).
//
// The injected channel physics is selectable, so the same experiment
// shows what happens when the wire violates the planner's i.i.d.
// assumption (bursts, common-mode coupling):
//
//   ./build/examples/fault_injection
//   ./build/examples/fault_injection --fault-model gilbert-elliott
//       --ge-p-gb 1e-3 --ge-p-bg 0.1 --ge-ber-good 1e-7 --ge-ber-bad 1e-4
//   ./build/examples/fault_injection --fault-model common-mode
//       --common-fraction 0.5 --seed 7
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "fault/fault_model.hpp"
#include "fault/reliability.hpp"

int main(int argc, char** argv) {
  using namespace coeff;

  fault::FaultModelConfig fault_model;
  std::uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fault_injection: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--fault-model") {
      const char* name = next("--fault-model");
      const auto kind = fault::parse_fault_model_kind(name);
      if (!kind.has_value()) {
        std::fprintf(stderr, "fault_injection: unknown fault model '%s'\n",
                     name);
        return 2;
      }
      fault_model.kind = *kind;
    } else if (arg == "--ge-p-gb") {
      fault_model.gilbert_elliott.p_good_to_bad = std::atof(next(arg.c_str()));
    } else if (arg == "--ge-p-bg") {
      fault_model.gilbert_elliott.p_bad_to_good = std::atof(next(arg.c_str()));
    } else if (arg == "--ge-ber-good") {
      fault_model.gilbert_elliott.ber_good = std::atof(next(arg.c_str()));
    } else if (arg == "--ge-ber-bad") {
      fault_model.gilbert_elliott.ber_bad = std::atof(next(arg.c_str()));
    } else if (arg == "--common-fraction") {
      fault_model.common_fraction = std::atof(next(arg.c_str()));
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next("--seed")));
    } else {
      std::fprintf(stderr,
                   "fault_injection: unknown flag '%s' (supported: "
                   "--fault-model, --ge-p-gb, --ge-p-bg, --ge-ber-good, "
                   "--ge-ber-bad, --common-fraction, --seed)\n",
                   arg.c_str());
      return 2;
    }
  }

  const auto statics =
      net::brake_by_wire().merged_with(net::adaptive_cruise());
  const double ber = 1e-6;  // harsh environment so copies matter

  fault_model.ber = ber;
  std::printf("Differentiated retransmission across SIL goals "
              "(BBW+ACC, planned BER=%.0e)\n"
              "fault model: %s seed=%llu\n\n",
              ber, fault::describe(fault_model).c_str(),
              static_cast<unsigned long long>(seed));
  std::printf("%6s %14s | %7s %7s | %14s | %12s\n", "SIL", "rho(1h)",
              "copies", "max k", "added load", "theorem-1 R");
  for (auto sil : {fault::Sil::kSil1, fault::Sil::kSil2, fault::Sil::kSil3,
                   fault::Sil::kSil4}) {
    fault::SolverOptions solver;
    solver.ber = ber;
    solver.rho = fault::reliability_goal(sil, solver.u);
    solver.max_copies_per_message = 10;
    const auto plan = fault::solve_differentiated(statics, solver);
    std::printf("%6d %14.10f | %7d %7d | %11.0f b/s | %.10f\n",
                static_cast<int>(sil), solver.rho, plan.total_copies(),
                plan.max_copies(), plan.added_load_bits_per_second,
                plan.reliability());
  }

  // Measured check: long run at SIL3, count instance losses.
  std::printf("\nInjected-fault check (SIL3 goal, 5 s of bus time):\n");
  core::ExperimentConfig config;
  config.cluster = core::paper_cluster_apps();
  config.statics = statics;
  config.ber = ber;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::seconds(5);
  config.fault_model = fault_model;
  config.seed = seed;
  const auto coeff =
      core::run_experiment(config, core::SchemeKind::kCoEfficient);
  const auto fspec = core::run_experiment(config, core::SchemeKind::kFspec);
  auto report = [](const char* name, const core::ExperimentResult& r) {
    const auto& s = r.run.statics;
    std::printf(
        "  %-12s released=%lld undelivered=%lld (%.4f%%) corrupted "
        "copies=%lld scheduled reliability=%.9f\n",
        name, static_cast<long long>(s.released),
        static_cast<long long>(s.released - s.delivered),
        100.0 * static_cast<double>(s.released - s.delivered) /
            static_cast<double>(s.released),
        static_cast<long long>(s.copies_corrupted), r.reliability_scheduled);
  };
  report("CoEfficient", coeff);
  report("FSPEC", fspec);
  std::printf(
      "\nFSPEC's uniform mirrored rounds either fit (wasting bandwidth) or\n"
      "get dropped by best effort; the differentiated plan spends copies\n"
      "exactly where Theorem 1 says the failure probability needs them.\n"
      "Burst (gilbert-elliott) and common-mode physics violate the plan's\n"
      "independence assumptions: pair them with --monitor in coeffctl to\n"
      "watch the runtime monitor re-plan online.\n");

  // Structural campaign: the same workload through a channel blackout
  // plus an ECU crash/restart. CoEfficient re-homes static frames onto
  // the surviving channel and re-plans around the dead member; FSPEC
  // drains its owed mirrors into the dark wire.
  std::printf("\nStructural campaign (channel A dark 50-100 ms, node 1 down "
              "80-140 ms,\n200 ms window):\n");
  core::ExperimentConfig structural = config;
  structural.batch_window = sim::millis(200);
  structural.structural.blackouts.push_back(
      {flexray::ChannelId::kA, sim::millis(50), sim::millis(100)});
  structural.structural.crashes.push_back(
      {units::NodeId{1}, sim::millis(80), sim::millis(140)});
  auto structural_report = [](const char* name,
                              const core::ExperimentResult& r) {
    std::printf("  %-12s static miss=%.4f%% failovers=%lld frames lost=%lld "
                "source lost=%lld replans=%lld\n",
                name, 100.0 * r.run.statics.miss_ratio(),
                static_cast<long long>(r.run.failovers),
                static_cast<long long>(r.run.frames_lost),
                static_cast<long long>(r.run.statics.source_lost),
                static_cast<long long>(r.run.membership_replans));
  };
  structural_report(
      "CoEfficient",
      core::run_experiment(structural, core::SchemeKind::kCoEfficient));
  structural_report(
      "FSPEC", core::run_experiment(structural, core::SchemeKind::kFspec));
  std::printf(
      "\nThe failover path is why CoEfficient's static segment rides out a\n"
      "single-channel outage; replica voting (--vote in coeffctl) adds\n"
      "value-domain masking on top of the time-domain redundancy.\n");
  return 0;
}
