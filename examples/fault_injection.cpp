// Reliability-goal exploration across IEC 61508 safety integrity
// levels: how many retransmission copies each SIL costs, what bandwidth
// that adds, and whether the goal survives contact with injected faults
// (measured delivery over a long run vs the analytic Theorem-1 value).
//
//   ./build/examples/fault_injection
#include <cstdio>

#include "core/experiment.hpp"
#include "fault/reliability.hpp"

int main() {
  using namespace coeff;

  const auto statics =
      net::brake_by_wire().merged_with(net::adaptive_cruise());
  const double ber = 1e-6;  // harsh environment so copies matter

  std::printf("Differentiated retransmission across SIL goals "
              "(BBW+ACC, BER=%.0e)\n\n",
              ber);
  std::printf("%6s %14s | %7s %7s | %14s | %12s\n", "SIL", "rho(1h)",
              "copies", "max k", "added load", "theorem-1 R");
  for (auto sil : {fault::Sil::kSil1, fault::Sil::kSil2, fault::Sil::kSil3,
                   fault::Sil::kSil4}) {
    fault::SolverOptions solver;
    solver.ber = ber;
    solver.rho = fault::reliability_goal(sil, solver.u);
    solver.max_copies_per_message = 10;
    const auto plan = fault::solve_differentiated(statics, solver);
    std::printf("%6d %14.10f | %7d %7d | %11.0f b/s | %.10f\n",
                static_cast<int>(sil), solver.rho, plan.total_copies(),
                plan.max_copies(), plan.added_load_bits_per_second,
                plan.reliability());
  }

  // Measured check: long run at SIL3, count instance losses.
  std::printf("\nInjected-fault check (SIL3 goal, 5 s of bus time):\n");
  core::ExperimentConfig config;
  config.cluster = core::paper_cluster_apps();
  config.statics = statics;
  config.ber = ber;
  config.sil = fault::Sil::kSil3;
  config.batch_window = sim::seconds(5);
  const auto coeff =
      core::run_experiment(config, core::SchemeKind::kCoEfficient);
  const auto fspec = core::run_experiment(config, core::SchemeKind::kFspec);
  auto report = [](const char* name, const core::ExperimentResult& r) {
    const auto& s = r.run.statics;
    std::printf(
        "  %-12s released=%lld undelivered=%lld (%.4f%%) corrupted "
        "copies=%lld scheduled reliability=%.9f\n",
        name, static_cast<long long>(s.released),
        static_cast<long long>(s.released - s.delivered),
        100.0 * static_cast<double>(s.released - s.delivered) /
            static_cast<double>(s.released),
        static_cast<long long>(s.copies_corrupted), r.reliability_scheduled);
  };
  report("CoEfficient", coeff);
  report("FSPEC", fspec);
  std::printf(
      "\nFSPEC's uniform mirrored rounds either fit (wasting bandwidth) or\n"
      "get dropped by best effort; the differentiated plan spends copies\n"
      "exactly where Theorem 1 says the failure probability needs them.\n");
  return 0;
}
