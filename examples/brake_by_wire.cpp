// Brake-By-Wire walkthrough (Table II of the paper).
//
// Shows the full CoEfficient pipeline on a safety-critical workload:
//   1. validate the message set and inspect the static schedule table,
//   2. solve the differentiated retransmission plan for a SIL-3 goal,
//   3. sweep the bit error rate and watch delivery hold while the
//      best-effort baseline degrades.
//
//   ./build/examples/brake_by_wire
#include <cstdio>

#include "core/experiment.hpp"
#include "fault/reliability.hpp"
#include "sched/schedule_table.hpp"

int main() {
  using namespace coeff;

  const auto cluster = core::paper_cluster_apps();
  const auto bbw = net::brake_by_wire();
  bbw.validate();

  // --- 1. The static schedule table -------------------------------------
  const auto table = sched::StaticScheduleTable::build(bbw, cluster);
  std::printf("BBW static schedule: %zu messages in %lld slots "
              "(table repeats every %lld cycles)\n",
              table.assignments().size(),
              static_cast<long long>(table.slots_used()),
              static_cast<long long>(table.table_period_cycles()));
  for (const auto& a : table.assignments()) {
    const net::Message* m = bbw.find(a.message_id);
    std::printf("  %-8s slot %2lld  base %2lld  rep %2lld  latency %s\n",
                m->name.c_str(), static_cast<long long>(a.slot.value()),
                static_cast<long long>(a.base_cycle.value()),
                static_cast<long long>(a.repetition),
                sim::to_string(a.latency).c_str());
  }
  if (!table.deadline_risk().empty()) {
    std::printf("  !! %zu messages cannot meet their deadline under TDMA "
                "alone (rescued by CoEfficient's slack copies)\n",
                table.deadline_risk().size());
  }

  // --- 2. The differentiated retransmission plan ------------------------
  fault::SolverOptions solver;
  solver.ber = 1e-7;
  solver.rho = fault::reliability_goal(fault::Sil::kSil3, solver.u);
  const auto plan = fault::solve_differentiated(bbw, solver);
  std::printf("\nSIL-3 plan at BER=1e-7: %d copies total, "
              "added load %.0f bits/s, reliability %.10f\n",
              plan.total_copies(), plan.added_load_bits_per_second,
              plan.reliability());
  for (std::size_t z = 0; z < bbw.size(); ++z) {
    if (plan.copies[z] > 0) {
      std::printf("  %-8s k=%d  (W=%lld bits, T=%s)\n", bbw[z].name.c_str(),
                  plan.copies[z], static_cast<long long>(bbw[z].size_bits),
                  sim::to_string(bbw[z].period).c_str());
    }
  }

  // --- 3. BER sweep ------------------------------------------------------
  std::printf("\nBER sweep (0.5 s batches):\n%10s | %16s %16s\n", "BER",
              "CoEff miss[%]", "FSPEC miss[%]");
  for (double ber : {1e-9, 1e-7, 1e-6, 1e-5}) {
    core::ExperimentConfig config;
    config.cluster = cluster;
    config.statics = bbw;
    config.ber = ber;
    config.sil = fault::Sil::kSil3;
    config.batch_window = sim::millis(500);
    const auto coeff =
        core::run_experiment(config, core::SchemeKind::kCoEfficient);
    const auto fspec = core::run_experiment(config, core::SchemeKind::kFspec);
    std::printf("%10.0e | %16.2f %16.2f\n", ber,
                coeff.run.overall_miss_ratio() * 100.0,
                fspec.run.overall_miss_ratio() * 100.0);
  }
  return 0;
}
