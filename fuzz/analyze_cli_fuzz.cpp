// libFuzzer harness for the `coeffctl analyze` flag parser.
//
// Contract under test: parse_prob_cli is a total function over argv
// tokens — any byte soup tokenized into arguments yields either ok()
// with range-validated options or a one-line error, without throwing,
// reading out of bounds, or leaving the options in an invalid state.
// Accepted parses must satisfy the documented invariants (quantum and
// bin bounds, help/error exclusivity), since coeffctl feeds the result
// straight into Pmf construction.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/prob_cli.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // Tokenize on NUL and newline — both "argv straight from bytes" and
  // "one flag per line" corpus layouts mutate well.
  std::vector<std::string> args;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= bytes.size(); ++i) {
    if (i == bytes.size() || bytes[i] == '\0' || bytes[i] == '\n') {
      if (i > start) args.emplace_back(bytes.substr(start, i - start));
      start = i + 1;
      if (args.size() > 64) break;  // keep each input cheap
    }
  }

  const auto parse = coeff::analysis::parse_prob_cli(args);
  if (parse.ok()) {
    const auto& o = parse.options;
    if (o.quantum_us < 1 || o.quantum_us > 1'000'000) __builtin_trap();
    if (o.max_bins < 16 || o.max_bins > 1'048'576) __builtin_trap();
    if (o.dyn_max_slips < 1 || o.dyn_max_slips > 1'024) __builtin_trap();
    // Without --prob the only valid outcomes are --help or an error.
    if (!o.prob && !o.help) __builtin_trap();
  } else if (parse.error.empty()) {
    __builtin_trap();  // !ok() must carry a printable message
  }
  return 0;
}
