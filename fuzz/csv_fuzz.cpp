// libFuzzer harness for the communication-matrix CSV parser.
//
// Contract under test: net::from_csv either returns a validated
// MessageSet or throws std::invalid_argument. Any other escape — a
// crash, a sanitizer report, an overflow wrapping into sim::Time, or a
// different exception type — is a parser bug. The round-trip through
// to_csv/from_csv must also hold for every set the parser accepts.
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "net/csv.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::optional<coeff::net::MessageSet> set;
  try {
    set = coeff::net::from_csv(text);
  } catch (const std::invalid_argument&) {
    // Malformed input rejected with the documented exception: fine.
    return 0;
  }
  // Accepted input must survive a serialize/parse round trip; a throw
  // here escapes the harness and is reported as a finding.
  (void)coeff::net::from_csv(coeff::net::to_csv(*set));
  return 0;
}
