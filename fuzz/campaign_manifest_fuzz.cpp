// libFuzzer harness for the campaign durability parsers.
//
// Contract under test: parse_manifest, parse_checkpoint and parse_row
// never throw and never trip a sanitizer on ANY byte sequence — they
// are fed files that a kill -9 may have torn at an arbitrary byte, or
// that a sick disk may have scrambled outright. Acceptance has its own
// invariant: anything parse_manifest accepts must render back to bytes
// it accepts again (the manifest rewrite on campaign completion depends
// on that), and an accepted result row must round-trip through
// render_row/parse_row.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "campaign/checkpoint.hpp"
#include "campaign/manifest.hpp"
#include "campaign/report.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  const auto manifest = coeff::campaign::parse_manifest(bytes);
  if (manifest.ok) {
    const std::string rendered =
        coeff::campaign::render_manifest(manifest.manifest);
    if (!coeff::campaign::parse_manifest(rendered).ok) {
      __builtin_trap();  // accepted manifest must re-render acceptably
    }
  }

  const auto checkpoint = coeff::campaign::parse_checkpoint(bytes);
  (void)checkpoint;

  // Result rows are single lines; feed each line of the input.
  std::size_t start = 0;
  while (start <= bytes.size()) {
    auto newline = bytes.find('\n', start);
    if (newline == std::string_view::npos) newline = bytes.size();
    const auto row =
        coeff::campaign::parse_row(bytes.substr(start, newline - start));
    if (row.has_value()) {
      const auto again =
          coeff::campaign::parse_row(coeff::campaign::render_row(*row));
      if (!again.has_value()) {
        __builtin_trap();  // accepted row must round-trip
      }
    }
    if (newline == bytes.size()) break;
    start = newline + 1;
  }
  return 0;
}
