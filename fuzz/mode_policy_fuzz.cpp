// libFuzzer harness for the mixed-criticality CLI parsers.
//
// Contract under test: parse_mode_policy and parse_criticality_spec
// never throw and never trip a sanitizer on ANY byte sequence — they
// sit directly behind the --mode-policy / --criticality coeffctl flags
// and behind campaign manifests regenerated from disk. Acceptance has
// its own invariant: any policy parse_mode_policy accepts must pass
// ModePolicy::validate() (the scheduler constructs a ModeManager from
// it unconditionally), and an accepted criticality spec must only name
// the three known levels.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "sched/criticality.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  const auto policy = coeff::sched::parse_mode_policy(bytes);
  if (policy.has_value()) {
    try {
      policy->validate();
    } catch (...) {
      __builtin_trap();  // accepted policy must be constructible
    }
    coeff::sched::ModeManager manager(*policy);
    (void)manager.evaluate(1.0, false);
  }

  const auto crit = coeff::sched::parse_criticality_spec(bytes);
  if (crit.has_value()) {
    for (const auto& [id, level] : crit->overrides) {
      if (id < 0 || static_cast<int>(level) < 0 ||
          static_cast<int>(level) > 2) {
        __builtin_trap();  // accepted spec must stay in the level range
      }
    }
  }
  return 0;
}
